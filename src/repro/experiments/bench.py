"""Kernel-scale wall-clock benchmarks (``python -m repro bench``).

The paper's exhibits run at 1994 scales (two hosts, a handful of tasks);
the ROADMAP's production-scale north star needs the simulation kernel to
stay fast at hundreds of concurrent jobs per server.  This module
measures the three regimes that bound that scaling:

* ``ps_churn`` — one :class:`~repro.sim.ProcessorSharing` server under
  submit/cancel/load/set-rate churn with 512 resident jobs.  This is the
  pure-kernel hot loop: every state change used to cost O(n), so the
  whole run was O(n²).
* ``cluster_churn`` — a 64-host worknet with 512 concurrent compute
  jobs and migration-style churn (cancel on one host, resubmit the
  remaining work on another) plus owner load flapping.
* ``opt_sweep`` — 10 runs of the Table 6 ADMopt vacate (the paper's own
  workload), i.e. the end-to-end cost of regenerating an exhibit.

Results are emitted as a machine-readable document (see
``BENCH_kernel.json`` at the repo root for the committed baseline, and
the CI ``bench`` job for the regression gate).
"""

from __future__ import annotations

import json
import platform
import random
import time
from collections import deque
from typing import Any, Dict, Optional

from ..sim import Simulator
from ..sim.resources import ProcessorSharing

__all__ = [
    "SCHEMA",
    "bench_ps_churn",
    "bench_cluster_churn",
    "bench_opt_sweep",
    "run_bench",
    "render_bench",
]

SCHEMA = "repro-bench-kernel/1"

#: Fixed seed: the benchmarked *work* is deterministic; only the
#: wall-clock measurement varies between runs.
_SEED = 1994


def _queue_len(sim: Simulator) -> int:
    return len(sim._queue)


def _stale(sim: Simulator, ps: Optional[ProcessorSharing] = None) -> Dict[str, Any]:
    """Heap-hygiene counters (absent on the legacy kernel)."""
    out: Dict[str, Any] = {}
    pending = getattr(sim, "discarded_pending", None)
    if pending is not None:
        out["discarded_pending"] = pending
    if ps is not None:
        superseded = getattr(ps, "superseded_wakeups", None)
        if superseded is not None:
            out["superseded_wakeups"] = superseded
    return out


def bench_ps_churn(
    jobs: int = 512, rounds: int = 2000, seed: int = _SEED
) -> Dict[str, Any]:
    """One PS server, ``jobs`` resident jobs, ``rounds`` of churn.

    Each round performs a short-job submit, one migration-style
    cancel+resubmit of a resident job, periodic owner-load flapping and
    rate changes, then advances simulated time — i.e. every round hits
    the server's full state-change surface.
    """
    sim = Simulator()
    ps = ProcessorSharing(sim, rate=1e6, name="bench-cpu")
    rng = random.Random(seed)
    resident = [ps.submit_job(1e12 + i, label="resident") for i in range(jobs)]
    loads: deque = deque()
    completions = 0

    def _on_done(_ev) -> None:
        nonlocal completions
        completions += 1

    max_queue = 0
    t0 = time.perf_counter()
    for r in range(rounds):
        short = ps.submit(rng.uniform(0.5, 2.0), label="short")
        if short.callbacks is not None:
            short.callbacks.append(_on_done)
        i = rng.randrange(len(resident))
        rem = ps.cancel(resident[i])
        resident[i] = ps.submit_job(rem if rem > 0 else 1e12, label="resident")
        if r % 7 == 0:
            loads.append(ps.add_load(weight=2.0, label="owner"))
            if len(loads) > 8:
                ps.remove_load(loads.popleft())
        if r % 11 == 0:
            ps.set_rate(1e6 * (1.0 + 0.25 * rng.random()))
        sim.run(until=sim.now + 1e-4)
        if len(sim._queue) > max_queue:
            max_queue = len(sim._queue)
    wall = time.perf_counter() - t0
    ops = rounds * 4  # submit + cancel + resubmit + run (amortizes the rest)
    return {
        "jobs": jobs,
        "rounds": rounds,
        "wall_s": wall,
        "ops_per_s": ops / wall,
        "short_jobs_completed": completions,
        "sim_time_s": sim.now,
        "max_event_queue": max_queue,
        **_stale(sim, ps),
    }


def bench_cluster_churn(
    n_hosts: int = 64,
    jobs_per_host: int = 8,
    migrations: int = 1500,
    seed: int = _SEED,
) -> Dict[str, Any]:
    """A 64-host worknet with 512 concurrent jobs and migration churn."""
    from ..hw.cluster import Cluster

    cl = Cluster(n_hosts=n_hosts, trace=False)
    sim = cl.sim
    rng = random.Random(seed)
    active = []  # (host_index, PsJob)
    for hi, host in enumerate(cl.hosts):
        for j in range(jobs_per_host):
            flops = host.cpu.rate * rng.uniform(50.0, 200.0)
            active.append([hi, host.cpu.submit_job(flops, label=f"w{hi}.{j}")])

    def churner():
        for m in range(migrations):
            # Migrate: withdraw the remaining work from one host's CPU and
            # resubmit it on another (what every migration engine does to a
            # mid-flight computation), with a small state transfer on the
            # shared medium.
            k = rng.randrange(len(active))
            src_i, job = active[k]
            dst_i = rng.randrange(n_hosts - 1)
            if dst_i >= src_i:
                dst_i += 1
            rem = cl.hosts[src_i].cpu.cancel(job)
            if rem <= 0:
                rem = cl.hosts[src_i].cpu.rate * rng.uniform(50.0, 200.0)
            yield cl.network.transfer(
                cl.hosts[src_i], cl.hosts[dst_i], 64 * 1024, label="mig-state"
            )
            active[k] = [dst_i, cl.hosts[dst_i].cpu.submit_job(rem, label="migrated")]
            # Owner-load flapping on a third host.
            h = cl.hosts[rng.randrange(n_hosts)]
            handle = h.add_external_load(weight=2.0)
            yield sim.timeout(0.05)
            h.remove_external_load(handle)

    proc = sim.process(churner(), name="churner")
    max_queue = 0
    t0 = time.perf_counter()
    while proc.is_alive:
        sim.run(until=sim.now + 5.0)
        if len(sim._queue) > max_queue:
            max_queue = len(sim._queue)
    wall = time.perf_counter() - t0
    return {
        "hosts": n_hosts,
        "concurrent_jobs": n_hosts * jobs_per_host,
        "migrations": migrations,
        "wall_s": wall,
        "migrations_per_s": migrations / wall,
        "sim_time_s": sim.now,
        "max_event_queue": max_queue,
        **_stale(sim),
    }


def bench_opt_sweep(repeats: int = 10, data_mb: float = 4.2) -> Dict[str, Any]:
    """``repeats`` × the Table 6 ADMopt vacate — an end-to-end exhibit."""
    from .table6 import vacate_one_slave

    t0 = time.perf_counter()
    migration_s = 0.0
    for _ in range(repeats):
        stats = vacate_one_slave(data_mb)
        migration_s = stats.migration_time
    wall = time.perf_counter() - t0
    return {
        "repeats": repeats,
        "data_mb": data_mb,
        "wall_s": wall,
        "runs_per_s": repeats / wall,
        "migration_s": migration_s,
    }


def run_bench(smoke: bool = False) -> Dict[str, Any]:
    """Run the full suite; ``smoke=True`` shrinks every axis (CLI tests)."""
    if smoke:
        benches = {
            "ps_churn": bench_ps_churn(jobs=32, rounds=60),
            "cluster_churn": bench_cluster_churn(
                n_hosts=4, jobs_per_host=2, migrations=20
            ),
            "opt_sweep": bench_opt_sweep(repeats=1, data_mb=0.6),
        }
    else:
        benches = {
            "ps_churn": bench_ps_churn(),
            "cluster_churn": bench_cluster_churn(),
            "opt_sweep": bench_opt_sweep(),
        }
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "kernel": getattr(ProcessorSharing, "KERNEL", "legacy-list"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benches": benches,
    }


def render_bench(doc: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`run_bench` document."""
    out = [f"== kernel bench ({doc['kernel']}, python {doc['python']}) =="]
    for name, b in doc["benches"].items():
        parts = [f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                 for k, v in b.items()]
        out.append(f"  {name:14s} " + " ".join(parts))
    return "\n".join(out)


def main(argv=None) -> int:  # pragma: no cover - thin CLI shim
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro.experiments.bench")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--smoke", action="store_true")
    args = parser.parse_args(argv)
    doc = run_bench(smoke=args.smoke)
    print(json.dumps(doc, indent=2) if args.json else render_bench(doc))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
