"""Kernel-scale wall-clock benchmarks (``python -m repro bench``).

The paper's exhibits run at 1994 scales (two hosts, a handful of tasks);
the ROADMAP's production-scale north star needs the simulation kernel to
stay fast at hundreds of concurrent jobs per server.  This module
measures the regimes that bound that scaling:

* ``ps_churn`` — one :class:`~repro.sim.ProcessorSharing` server under
  submit/cancel/load/set-rate churn with 512 resident jobs.  This is the
  pure-kernel hot loop: every state change used to cost O(n), so the
  whole run was O(n²).
* ``cluster_churn`` — a 64-host worknet with 512 concurrent compute
  jobs and migration-style churn (cancel on one host, resubmit the
  remaining work on another) plus owner load flapping.
* ``opt_sweep`` — 10 runs of the Table 6 ADMopt vacate (the paper's own
  workload), i.e. the end-to-end cost of regenerating an exhibit.
* ``storm`` — the calendar-kernel gate: a 1024-host worknet absorbing
  100k+ short tasks in SPMD waves while a control-plane storm re-rates
  the whole fleet and migrates residents.  Run on **both** event-core
  backends (``queue="heap"`` and ``queue="calendar"``); the simulated
  trajectories must be bit-identical (``fingerprint``) and the committed
  artifact records the wall-clock speedup the calendar configuration —
  calendar queue + same-instant batch dispatch + per-cohort vectorized
  PS epoch updates + per-host wave aggregation — achieves over the
  unchanged heap kernel.

``ps_churn`` and ``cluster_churn`` accept ``queue=`` so either backend
can be profiled in isolation; ``opt_sweep`` always runs the exhibit
configuration (default heap backend — exhibits are frozen byte-for-byte
on it).

Results are emitted as a machine-readable document (see
``BENCH_kernel.json`` at the repo root for the committed artifact, which
``python -m repro bench --json --out BENCH_kernel.json`` rewrites
reproducibly).  Every bench entry carries uniform ``python`` /
``machine`` / ``best_of`` metadata; wall times are best-of-``best_of``
while the simulated quantities are asserted identical across repeats.
"""

from __future__ import annotations

import hashlib
import json
import platform
import random
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..sim import Simulator
from ..sim.resources import ProcessorSharing

__all__ = [
    "SCHEMA",
    "bench_ps_churn",
    "bench_cluster_churn",
    "bench_opt_sweep",
    "bench_storm",
    "bench_storm_pair",
    "run_bench",
    "render_bench",
]

SCHEMA = "repro-bench-kernel/2"

#: Fixed seed: the benchmarked *work* is deterministic; only the
#: wall-clock measurement varies between runs.
_SEED = 1994

#: Historical wall-clock measurements carried in the committed artifact:
#: the legacy O(n)-list kernel (pre virtual-time rewrite) at the same
#: bench scales.  These are constants — re-measuring them would need the
#: deleted kernel — kept so the artifact tells the whole story.
_HISTORY: Dict[str, Any] = {
    "legacy-list": {
        "ps_churn": {"wall_s": 1.3692294989996299, "max_event_queue": 528},
        "cluster_churn": {"wall_s": 0.10915694100003748, "max_event_queue": 6431},
        "opt_sweep": {"wall_s": 0.07408524300080899},
    },
}


def _meta(best_of: int) -> Dict[str, Any]:
    """Uniform per-bench environment metadata."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "best_of": best_of,
    }


def _best_of(fn: Callable[[], Dict[str, Any]], best_of: int) -> Dict[str, Any]:
    """Run ``fn`` ``best_of`` times; keep the fastest wall clock.

    The simulated quantities must agree across repeats (the workloads
    are seeded and the kernel is deterministic) — a mismatch is a bug,
    not noise, so it raises.
    """
    result: Optional[Dict[str, Any]] = None
    for _ in range(max(1, best_of)):
        run = fn()
        if result is None:
            result = run
        else:
            sim_a = {k: v for k, v in result.items() if not _is_wall_key(k)}
            sim_b = {k: v for k, v in run.items() if not _is_wall_key(k)}
            if sim_a != sim_b:
                raise AssertionError(
                    f"non-deterministic bench result: {sim_a} != {sim_b}"
                )
            if run["wall_s"] < result["wall_s"]:
                result = run
    assert result is not None
    result.update(_meta(max(1, best_of)))
    return result


def _is_wall_key(key: str) -> bool:
    return key in ("wall_s", "ops_per_s", "migrations_per_s", "runs_per_s",
                   "tasks_per_s")


def _stale(sim: Simulator, ps: Optional[ProcessorSharing] = None) -> Dict[str, Any]:
    """Heap-hygiene counters (absent on the legacy kernel)."""
    out: Dict[str, Any] = {}
    pending = getattr(sim, "discarded_pending", None)
    if pending is not None:
        out["discarded_pending"] = pending
    if ps is not None:
        superseded = getattr(ps, "superseded_wakeups", None)
        if superseded is not None:
            out["superseded_wakeups"] = superseded
    return out


def bench_ps_churn(
    jobs: int = 512, rounds: int = 2000, seed: int = _SEED, queue: str = "heap"
) -> Dict[str, Any]:
    """One PS server, ``jobs`` resident jobs, ``rounds`` of churn.

    Each round performs a short-job submit, one migration-style
    cancel+resubmit of a resident job, periodic owner-load flapping and
    rate changes, then advances simulated time — i.e. every round hits
    the server's full state-change surface.
    """
    sim = Simulator(queue=queue)
    ps = ProcessorSharing(sim, rate=1e6, name="bench-cpu")
    rng = random.Random(seed)
    resident = [ps.submit_job(1e12 + i, label="resident") for i in range(jobs)]
    loads: deque = deque()
    completions = 0

    def _on_done(_ev: Any) -> None:
        nonlocal completions
        completions += 1

    max_queue = 0
    t0 = time.perf_counter()
    for r in range(rounds):
        short = ps.submit(rng.uniform(0.5, 2.0), label="short")
        if short.callbacks is not None:
            short.callbacks.append(_on_done)
        i = rng.randrange(len(resident))
        rem = ps.cancel(resident[i])
        resident[i] = ps.submit_job(rem if rem > 0 else 1e12, label="resident")
        if r % 7 == 0:
            loads.append(ps.add_load(weight=2.0, label="owner"))
            if len(loads) > 8:
                ps.remove_load(loads.popleft())
        if r % 11 == 0:
            ps.set_rate(1e6 * (1.0 + 0.25 * rng.random()))
        sim.run(until=sim.now + 1e-4)
        if len(sim._queue) > max_queue:
            max_queue = len(sim._queue)
    wall = time.perf_counter() - t0
    ops = rounds * 4  # submit + cancel + resubmit + run (amortizes the rest)
    return {
        "queue": queue,
        "jobs": jobs,
        "rounds": rounds,
        "wall_s": wall,
        "ops_per_s": ops / wall,
        "short_jobs_completed": completions,
        "sim_time_s": sim.now,
        "max_event_queue": max_queue,
        **_stale(sim, ps),
    }


def bench_cluster_churn(
    n_hosts: int = 64,
    jobs_per_host: int = 8,
    migrations: int = 1500,
    seed: int = _SEED,
    queue: str = "heap",
) -> Dict[str, Any]:
    """A 64-host worknet with 512 concurrent jobs and migration churn."""
    from ..hw.cluster import Cluster

    cl = Cluster(n_hosts=n_hosts, trace=False, queue=queue)
    sim = cl.sim
    rng = random.Random(seed)
    active = []  # (host_index, PsJob)
    for hi, host in enumerate(cl.hosts):
        for j in range(jobs_per_host):
            flops = host.cpu.rate * rng.uniform(50.0, 200.0)
            active.append([hi, host.cpu.submit_job(flops, label=f"w{hi}.{j}")])

    def churner():
        for m in range(migrations):
            # Migrate: withdraw the remaining work from one host's CPU and
            # resubmit it on another (what every migration engine does to a
            # mid-flight computation), with a small state transfer on the
            # shared medium.
            k = rng.randrange(len(active))
            src_i, job = active[k]
            dst_i = rng.randrange(n_hosts - 1)
            if dst_i >= src_i:
                dst_i += 1
            rem = cl.hosts[src_i].cpu.cancel(job)
            if rem <= 0:
                rem = cl.hosts[src_i].cpu.rate * rng.uniform(50.0, 200.0)
            yield cl.network.transfer(
                cl.hosts[src_i], cl.hosts[dst_i], 64 * 1024, label="mig-state"
            )
            active[k] = [dst_i, cl.hosts[dst_i].cpu.submit_job(rem, label="migrated")]
            # Owner-load flapping on a third host.
            h = cl.hosts[rng.randrange(n_hosts)]
            handle = h.add_external_load(weight=2.0)
            yield sim.timeout(0.05)
            h.remove_external_load(handle)

    proc = sim.process(churner(), name="churner")
    max_queue = 0
    t0 = time.perf_counter()
    while proc.is_alive:
        sim.run(until=sim.now + 5.0)
        if len(sim._queue) > max_queue:
            max_queue = len(sim._queue)
    wall = time.perf_counter() - t0
    return {
        "queue": queue,
        "hosts": n_hosts,
        "concurrent_jobs": n_hosts * jobs_per_host,
        "migrations": migrations,
        "wall_s": wall,
        "migrations_per_s": migrations / wall,
        "sim_time_s": sim.now,
        "max_event_queue": max_queue,
        **_stale(sim),
    }


def bench_opt_sweep(repeats: int = 10, data_mb: float = 4.2) -> Dict[str, Any]:
    """``repeats`` × the Table 6 ADMopt vacate — an end-to-end exhibit."""
    from .table6 import vacate_one_slave

    t0 = time.perf_counter()
    migration_s = 0.0
    for _ in range(repeats):
        stats = vacate_one_slave(data_mb)
        migration_s = stats.migration_time
    wall = time.perf_counter() - t0
    return {
        "repeats": repeats,
        "data_mb": data_mb,
        "wall_s": wall,
        "runs_per_s": repeats / wall,
        "migration_s": migration_s,
    }


def bench_storm(
    queue: str,
    n_hosts: int = 1024,
    waves: int = 4,
    tasks_per_host: int = 25,
    fleet_rounds: int = 16,
    migrations: int = 64,
    rate_levels: int = 4,
    seed: int = _SEED,
) -> Dict[str, Any]:
    """A 1024-host / 100k-task migration storm on one queue backend.

    Each wave: every host absorbs an SPMD group of ``tasks_per_host``
    equal chunks (:meth:`~repro.hw.host.Host.compute_wave` — aggregated
    into one PS group entry on the calendar backend, expanded into
    scalar submits on the heap backend), the control plane re-rates the
    whole fleet ``fleet_rounds`` times in the same simulated instant
    (DVFS-style discrete levels, via
    :meth:`~repro.hw.cluster.Cluster.set_cpu_rates`), and ``migrations``
    resident computations are cancelled and resubmitted across hosts.

    The returned ``fingerprint`` digests every wave-completion timestamp
    and the final per-host kernel state; it must be identical across
    backends (asserted by :func:`bench_storm_pair` and the benchmark
    suite).
    """
    from ..hw.cluster import Cluster

    cl = Cluster(n_hosts=n_hosts, trace=False, queue=queue)
    sim = cl.sim
    rng = random.Random(seed)
    nprng = np.random.default_rng(seed)
    base = cl.hosts[0].cpu.rate
    chunk = base * 0.01  # 10 ms of dedicated CPU per task
    residents: List[Tuple[int, Any]] = [
        (i, h.cpu.submit_job(base * 1e4, label="resident"))
        for i, h in enumerate(cl.hosts)
    ]
    completions: List[float] = []

    def _done(ev: Any) -> None:
        completions.append(ev._value)

    def driver():
        for w in range(waves):
            # SPMD task wave: one group of equal chunks per host.
            for host in cl.hosts:
                ev = host.compute_wave(tasks_per_host, chunk, label="chunk")
                ev.callbacks.append(_done)
            # Control-plane storm: the whole fleet re-rated repeatedly
            # within one simulated instant (load renormalization sweeps).
            for r in range(fleet_rounds):
                steps = nprng.integers(0, rate_levels, n_hosts)
                rates = (base * (1.0 + 0.25 * steps / rate_levels)).tolist()
                cl.set_cpu_rates(rates)
            # Migration churn: residents hop between hosts mid-flight.
            for m in range(migrations):
                ri = rng.randrange(n_hosts)
                si, job = residents[ri]
                dst = rng.randrange(n_hosts)
                rem = cl.hosts[si].cpu.cancel(job)
                if rem <= 0:
                    rem = base * 1e4
                residents[ri] = (dst, cl.hosts[dst].cpu.submit_job(rem, label="resident"))
            yield sim.timeout(0.5)

    sim.process(driver(), name="storm")
    t0 = time.perf_counter()
    sim.run(until=waves * 0.5 + 60.0)
    wall = time.perf_counter() - t0
    tasks = n_hosts * waves * tasks_per_host
    digest = hashlib.sha256()
    digest.update(repr(sorted(completions)).encode())
    digest.update(
        repr([(h.cpu._vtime, h.cpu._total_weight, h.cpu._rate) for h in cl.hosts]).encode()
    )
    out: Dict[str, Any] = {
        "queue": queue,
        "kernel": sim.kernel_name,
        "hosts": n_hosts,
        "tasks": tasks,
        "waves": waves,
        "tasks_per_host": tasks_per_host,
        "fleet_rounds": fleet_rounds,
        "migrations": migrations * waves,
        "wall_s": wall,
        "tasks_per_s": tasks / wall,
        "waves_completed": len(completions),
        "sim_time_s": sim.now,
        "fingerprint": digest.hexdigest()[:16],
        **_stale(sim),
    }
    epoch = getattr(sim, "_epoch", None)
    if epoch is not None:
        out["deferred_rearms"] = epoch.deferred_rearms
        out["epoch_flushes"] = epoch.flushes
        out["vector_flushes"] = epoch.vector_flushes
    return out


def bench_storm_pair(best_of: int = 3, **kw: Any) -> Dict[str, Any]:
    """Run the storm on both backends; assert identical trajectories."""
    heap = _best_of(lambda: bench_storm("heap", **kw), best_of)
    calendar = _best_of(lambda: bench_storm("calendar", **kw), best_of)
    if heap["fingerprint"] != calendar["fingerprint"]:
        raise AssertionError(
            "storm trajectories diverged across queue backends: "
            f"{heap['fingerprint']} != {calendar['fingerprint']}"
        )
    shape = {
        k: heap[k]
        for k in ("hosts", "tasks", "waves", "tasks_per_host", "fleet_rounds",
                  "migrations", "sim_time_s", "fingerprint")
    }
    return {
        **shape,
        "heap": heap,
        "calendar": calendar,
        "speedup": heap["wall_s"] / calendar["wall_s"],
        **_meta(best_of),
    }


def run_bench(
    smoke: bool = False, queue: str = "heap", best_of: Optional[int] = None
) -> Dict[str, Any]:
    """Run the full suite; ``smoke=True`` shrinks every axis (CLI tests).

    ``queue`` selects the backend for the single-backend benches
    (``ps_churn`` / ``cluster_churn``); the ``storm`` bench always runs
    both backends and records their ratio.
    """
    n = best_of if best_of is not None else (1 if smoke else 3)
    if smoke:
        benches = {
            "ps_churn": _best_of(
                lambda: bench_ps_churn(jobs=32, rounds=60, queue=queue), n
            ),
            "cluster_churn": _best_of(
                lambda: bench_cluster_churn(
                    n_hosts=4, jobs_per_host=2, migrations=20, queue=queue
                ),
                n,
            ),
            "opt_sweep": _best_of(lambda: bench_opt_sweep(repeats=1, data_mb=0.6), n),
            "storm": bench_storm_pair(
                best_of=n, n_hosts=64, waves=2, tasks_per_host=8,
                fleet_rounds=4, migrations=8,
            ),
        }
    else:
        benches = {
            "ps_churn": _best_of(lambda: bench_ps_churn(queue=queue), n),
            "cluster_churn": _best_of(lambda: bench_cluster_churn(queue=queue), n),
            "opt_sweep": _best_of(lambda: bench_opt_sweep(), n),
            "storm": bench_storm_pair(best_of=n),
        }
    return {
        "schema": SCHEMA,
        "note": (
            "Committed wall-clock artifact for the simulation kernel. "
            "history.legacy-list is the pre-rewrite O(n)-list kernel "
            "(constant; that kernel no longer exists); storm runs both "
            "queue backends and must stay bit-identical between them. "
            "Regenerate with: python -m repro bench --json --out "
            "BENCH_kernel.json"
        ),
        "smoke": smoke,
        "queue": queue,
        "kernel": getattr(ProcessorSharing, "KERNEL", "legacy-list"),
        **_meta(n),
        "benches": benches,
        "history": _HISTORY,
        "speedup": {
            "storm_calendar_over_heap": benches["storm"]["speedup"],
            "ps_churn_vs_legacy": (
                _HISTORY["legacy-list"]["ps_churn"]["wall_s"]
                / benches["ps_churn"]["wall_s"]
            ),
            "cluster_churn_vs_legacy": (
                _HISTORY["legacy-list"]["cluster_churn"]["wall_s"]
                / benches["cluster_churn"]["wall_s"]
            ),
        },
    }


def render_bench(doc: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`run_bench` document."""
    out = [
        f"== kernel bench ({doc['kernel']}, queue={doc['queue']}, "
        f"python {doc['python']}, best of {doc['best_of']}) =="
    ]
    for name, b in doc["benches"].items():
        if name == "storm":
            out.append(
                f"  {name:14s} hosts={b['hosts']} tasks={b['tasks']} "
                f"heap={b['heap']['wall_s']:.4g}s "
                f"calendar={b['calendar']['wall_s']:.4g}s "
                f"speedup={b['speedup']:.1f}x fingerprint={b['fingerprint']}"
            )
            continue
        parts = [f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                 for k, v in b.items() if k not in ("python", "machine")]
        out.append(f"  {name:14s} " + " ".join(parts))
    sp = doc["speedup"]
    out.append(
        "  speedup        storm calendar/heap = "
        f"{sp['storm_calendar_over_heap']:.1f}x"
    )
    return "\n".join(out)


def main(argv=None) -> int:  # pragma: no cover - thin CLI shim
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro.experiments.bench")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--queue", choices=("heap", "calendar"), default="heap")
    args = parser.parse_args(argv)
    doc = run_bench(smoke=args.smoke, queue=args.queue)
    print(json.dumps(doc, indent=2) if args.json else render_bench(doc))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
