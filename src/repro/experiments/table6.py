"""Table 6 — ADMopt obtrusiveness (= migration cost) vs. data size.

Paper: 1.75 s at 0.6 MB up to 21.69 s at 20.8 MB.  ADM needs no restart
stage, so obtrusiveness and migration cost coincide (§4.3.3).  The
withdrawing slave pushes its half of the data to the remaining slave
through ordinary daemon-routed pvm messages — roughly *half* the raw
TCP rate — which is why ADM's redistribution of X bytes costs about
twice MPVM's migration of the same bytes.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.opt import AdmOpt, MB_DEC, OptConfig
from ..pvm import PvmSystem
from .harness import ExperimentResult, poll_until, quiet_cluster

__all__ = ["run", "PAPER_ROWS", "SIZES_MB", "vacate_one_slave"]

SIZES_MB = [0.6, 4.2, 5.8, 9.8, 13.5, 20.8]

PAPER_ROWS: List[Dict] = [
    {"data_mb": 0.6, "migration_s": 1.75},
    {"data_mb": 4.2, "migration_s": 4.42},
    {"data_mb": 5.8, "migration_s": 5.46},
    {"data_mb": 9.8, "migration_s": 9.96},
    {"data_mb": 13.5, "migration_s": 12.41},
    {"data_mb": 20.8, "migration_s": 21.69},
]


def vacate_one_slave(data_mb: float, params=None):
    """Run ADMopt, vacate slave 1 once it is computing; return the stats.

    Goes through the :class:`~repro.adm.AdmClient` migration pipeline —
    what the GS exercises — and returns the unified
    :class:`~repro.migration.MigrationStats` record.  ``params``
    overrides the hardware model (used by the poll-granularity ablation
    bench)."""
    cl = quiet_cluster(n_hosts=2, trace=False, params=params)
    vm = PvmSystem(cl)
    app = AdmOpt(vm, OptConfig(data_bytes=data_mb * MB_DEC, iterations=2000))
    app.start()
    out = {}

    def driver():
        # Wait for steady state: slave 1's FSM is in COMPUTE.
        yield from poll_until(
            cl.sim,
            lambda: app.slave_fsms.get(1) is not None
            and app.slave_fsms[1].current == "COMPUTE"
            and vm.in_flight_to(app.slave_tids[1]) == 0,
        )
        yield cl.sim.timeout(1.0)
        # Destination is advisory for ADM: the partitioner decides.
        stats = yield app.client.request_migration(app.workers[1], cl.host(0))
        out["stats"] = stats

    drv = cl.sim.process(driver())
    cl.run(until=drv)
    return out["stats"]


def run() -> ExperimentResult:
    rows = []
    for mb in SIZES_MB:
        stats = vacate_one_slave(mb)
        assert stats.obtrusiveness == stats.migration_time  # no restart stage
        rows.append({
            "data_mb": mb,
            "migration_s": stats.migration_time,
            "moved_mb": stats.state_bytes / MB_DEC,
        })
    result = ExperimentResult(
        exp_id="table6",
        title="ADMopt obtrusiveness (= migration cost) vs data size",
        columns=["data_mb", "migration_s", "moved_mb"],
        rows=rows,
        paper_rows=PAPER_ROWS,
    )
    result.check("migration time grows monotonically with size",
                 all(a["migration_s"] < b["migration_s"]
                     for a, b in zip(rows, rows[1:])))
    # Effective rate: moved bytes / time, for the large sizes where the
    # fixed costs are amortized.  Paper: ~0.5 MB/s (daemon route).
    rates = [r["moved_mb"] / r["migration_s"] for r in rows[2:]]
    result.check("effective rate ~ half raw TCP (0.40-0.60 MB/s)",
                 all(0.40 < rate < 0.60 for rate in rates))
    result.check(
        "each point >= 4.2 MB within 40% of the paper's",
        all(
            abs(r["migration_s"] - p["migration_s"]) / p["migration_s"] < 0.40
            for r, p in zip(rows[1:], PAPER_ROWS[1:])
        ),
    )
    result.notes = (
        "the withdrawing slave holds half the listed data size; the paper's "
        "0.6 MB point carries ~1.1 s of fixed cost its other rows do not "
        "show (their own per-row rates vary 0.47-0.54 MB/s), which we do "
        "not reproduce"
    )
    return result


if __name__ == "__main__":
    print(run().format())
