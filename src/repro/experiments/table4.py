"""Table 4 — UPVM obtrusiveness and migration cost, 0.6 MB SPMD_opt.

Paper: obtrusiveness 1.67 s, migration cost 6.88 s.  Obtrusiveness is
higher than MPVM's (pkbyte packing costs extra copies, and the ULP's
queued message buffers go in a separate send sequence); the migration
cost is dominated by the prototype's unoptimized per-chunk *accept*
mechanism at the destination — the gap the authors said they were
working on (§4.2.3).

The paper reports only the 0.6 MB point ("we are currently extending
the UPVM prototype to handle large data"); `run(extended=True)` sweeps
the Table 2 sizes as a flagged extension.
"""

from __future__ import annotations

from typing import List

from ..apps.opt import MB_DEC, OptConfig, SpmdOpt
from ..upvm import UpvmSystem
from .harness import ExperimentResult, poll_until, quiet_cluster

__all__ = ["run", "PAPER", "migrate_one_ulp", "EXTENDED_SIZES_MB"]

PAPER = {"data_mb": 0.6, "obtrusiveness_s": 1.67, "migration_s": 6.88}
EXTENDED_SIZES_MB = [0.6, 4.2, 5.8]


def migrate_one_ulp(data_mb: float, params=None):
    """Run SPMD_opt, migrate the co-located slave ULP (1) to host 1.

    ``params`` overrides the hardware model (used by the accept-cost
    ablation bench)."""
    cl = quiet_cluster(n_hosts=2, trace=False, params=params)
    vm = UpvmSystem(cl)
    app = SpmdOpt(vm, OptConfig(data_bytes=data_mb * MB_DEC, iterations=1000))
    app.start()
    upvm_app = app.app
    out = {}

    def driver():
        # Steady state: both slave ULPs hold their shards, nothing big
        # in flight.
        yield from poll_until(
            cl.sim,
            lambda: all(
                upvm_app.ulps[u].user_state_bytes > 0 for u in (1, 2)
            ),
        )
        yield cl.sim.timeout(1.0)
        done = vm.request_migration(upvm_app.ulps[1], cl.host(1))
        yield done
        out["stats"] = done.value

    drv = cl.sim.process(driver())
    cl.run(until=drv)
    return out["stats"]


def run(extended: bool = False) -> ExperimentResult:
    sizes = EXTENDED_SIZES_MB if extended else [0.6]
    rows: List[dict] = []
    for mb in sizes:
        stats = migrate_one_ulp(mb)
        rows.append({
            "data_mb": mb,
            "obtrusiveness_s": stats.obtrusiveness,
            "migration_s": stats.migration_time,
        })
    result = ExperimentResult(
        exp_id="table4",
        title="UPVM obtrusiveness and migration cost (SPMD_opt)",
        columns=["data_mb", "obtrusiveness_s", "migration_s"],
        rows=rows,
        paper_rows=[PAPER],
        notes=(
            "sizes beyond 0.6 MB are our extension; the paper reports only "
            "0.6 MB" if extended else ""
        ),
    )
    first = rows[0]
    result.check("obtrusiveness within 35% of the paper's 1.67 s",
                 0.65 * PAPER["obtrusiveness_s"] < first["obtrusiveness_s"]
                 < 1.35 * PAPER["obtrusiveness_s"])
    result.check("migration cost within 35% of the paper's 6.88 s",
                 0.65 * PAPER["migration_s"] < first["migration_s"]
                 < 1.35 * PAPER["migration_s"])
    result.check("migration >> obtrusiveness (unoptimized accept)",
                 first["migration_s"] > 2.5 * first["obtrusiveness_s"])
    from .table2 import migrate_one_slave

    mpvm = migrate_one_slave(0.6)
    result.check("UPVM more obtrusive than MPVM at the same size",
                 first["obtrusiveness_s"] > mpvm.obtrusiveness)
    return result


if __name__ == "__main__":
    print(run(extended=True).format())
