"""Lossy-network soak harness (``python -m repro soak --reliability``).

The crash soak (:mod:`repro.experiments.soak`) proves the recovery
subsystem survives dying *hosts*; this harness proves the reliability
layer survives a dying *network*.  For every seed it draws a random
schedule of message drops, duplications, reorderings, and transient
partitions with :meth:`FaultPlan.random` and throws it at the Opt
application in three legs:

* **lossy** — plain PVM with reliable channels armed; the wire drops,
  duplicates, and reorders the channel's datagrams for random windows.
  The run must complete with output identical to the fault-free run
  and the channel must never declare a message lost.
* **partition** — recovery armed with a partition grace: a transient
  partition cuts worker hosts off long enough for the detector to
  *confirm* their death, then heals.  The grace window must reprieve
  them — no fence, no restart, output identical.
* **storm** — everything at once on MPVM: drops + dups + reorders +
  partitions while the GS vacates a host mid-run, driving real
  migrations (with their two-phase transaction log) through the chaos.
  Exactly-once is asserted via ``TransactionLog.verify()``.

Every leg rides the same exactly-once plumbing: per-link sequencing
suppresses wire-level duplicates, the end-to-end delivery guard
suppresses cross-link ones, and a partition that heals inside the
grace never costs a task its life.  The committed
``BENCH_reliability.json`` at the repo root holds the full 20-seed run.
"""

from __future__ import annotations

import platform
from typing import Any, Dict, List, Tuple

from ..api import Session
from ..apps.opt import PvmOpt
from ..faults import FaultPlan
from ..pvm.errors import PvmError
from ..recovery import RecoveryConfig
from .soak_common import (
    CRASH_HOSTS,
    N_HOSTS,
    NotifyOpt,
    SLAVE_HOSTS,
    UNTIL_S,
    dist as _dist,
    reference_losses as _reference_losses,
    soak_workload as _workload,
)

_NotifyOpt = NotifyOpt

__all__ = ["SCHEMA", "run_soak_reliability", "render_soak_reliability"]

SCHEMA = "repro-bench-reliability/1"

#: Faults per seed in the single-kind legs (lossy / partition).
FAULTS_LOSSY = 6
FAULTS_PARTITION = 2
#: Faults per seed in the combined storm leg.
FAULTS_STORM = 8


def _grace(horizon: float) -> float:
    """Partition grace sized so any in-horizon partition heals inside it.

    Partitions drawn by :meth:`FaultPlan.random` last at most 30 % of
    the horizon and end by 95 % of it; confirmation lands a couple of
    mean heartbeat intervals into the silence, so a full horizon of
    grace always spans the remaining outage plus the heal-side
    heartbeat that proves the host alive.
    """
    return horizon


def _channel_facts(s: Session) -> Dict[str, Any]:
    assert s.reliability is not None
    facts = dict(s.reliability.stats.as_dict())
    facts["e2e_dups_suppressed"] = s.reliability.guard.suppressed
    return facts


def _recovery_facts(s: Session) -> Dict[str, Any]:
    if s.coordinator is None:
        return {"fenced": [], "restarted": 0, "lost": 0, "reprieved": 0}
    records = s.coordinator.records
    return {
        "fenced": sorted(s.coordinator.fence.fenced),
        "restarted": sum(
            1 for r in records for t in r.tasks if t.outcome == "restarted"
        ),
        "lost": sum(1 for r in records for t in r.tasks if t.outcome == "lost"),
        "reprieved": len(s.coordinator.reprieves),
    }


def _txn_facts(s: Session) -> Dict[str, Any]:
    violations: List[str] = []
    committed = aborted = 0
    for c in s._coordinators:
        txns = getattr(c, "txns", None)
        if txns is None:
            continue
        violations.extend(txns.verify())
        committed += len(txns.committed())
        aborted += len(txns.aborted())
    return {
        "committed": committed,
        "aborted": aborted,
        "violations": violations,
    }


def _finish(s: Session, app, ref_losses: List[float]) -> Dict[str, Any]:
    rec = _recovery_facts(s)
    txn = _txn_facts(s)
    chan = _channel_facts(s)
    return {
        "completed": "total_time" in app.report,
        "sim_time_s": round(app.report.get("total_time", 0.0), 6),
        "matched_reference": app.report.get("losses") == ref_losses,
        "channel": chan,
        "recovery": rec,
        "txns": txn,
        "clean": (
            "total_time" in app.report
            and app.report.get("losses") == ref_losses
            and chan["exhausted"] == 0
            and not rec["fenced"]
            and rec["restarted"] == 0
            and rec["lost"] == 0
            and not txn["violations"]
        ),
    }


def _leg_lossy(seed: int, cfg, horizon: float, ref_losses: List[float]):
    plan = FaultPlan.random(
        seed, n=FAULTS_LOSSY, horizon=horizon,
        hosts=list(CRASH_HOSTS), kinds=("drop", "dup", "reorder"),
    )
    s = Session(
        mechanism="pvm", n_hosts=N_HOSTS, seed=seed,
        faults=plan, reliability=True,
    )
    app = PvmOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.run(until=UNTIL_S)
    return _finish(s, app, ref_losses)


def _leg_partition(seed: int, cfg, horizon: float, ref_losses: List[float]):
    plan = FaultPlan.random(
        seed, n=FAULTS_PARTITION, horizon=horizon,
        hosts=list(CRASH_HOSTS), kinds=("partition",),
    )
    s = Session(
        mechanism="pvm", n_hosts=N_HOSTS, seed=seed,
        faults=plan, reliability=True,
        recovery=RecoveryConfig(partition_grace_s=_grace(horizon)),
    )
    app = _NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.run(until=UNTIL_S)
    out = _finish(s, app, ref_losses)
    # The headline claim: nobody restarts because a partition healed.
    out["quorum_shrunk"] = len(app.exits)
    out["clean"] = out["clean"] and not app.exits
    return out


def _leg_storm(seed: int, cfg, horizon: float, ref_losses: List[float]):
    plan = FaultPlan.random(
        seed, n=FAULTS_STORM, horizon=horizon,
        hosts=list(CRASH_HOSTS), kinds=("drop", "dup", "reorder", "partition"),
    )
    s = Session(
        mechanism="mpvm", n_hosts=N_HOSTS, seed=seed,
        faults=plan, reliability=True,
        recovery=RecoveryConfig(partition_grace_s=_grace(horizon)),
    )
    app = _NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()

    def vacate():
        # An announced reclaim mid-chaos: real migrations (and their
        # transactions) have to thread the same lossy wire.
        while len(app.slave_tids) < cfg.n_slaves:
            yield s.sim.timeout(0.05)
        yield s.sim.timeout(0.35 * horizon)
        try:
            events = s.reclaim(s.host(1))
        except PvmError:
            return
        for ev in events:
            try:
                yield ev
            except PvmError:
                pass  # abandoned migration: unit stays where it was

    s.sim.process(vacate(), name="soak:vacate").defuse()
    s.run(until=UNTIL_S)
    out = _finish(s, app, ref_losses)
    out["migrations"] = len(s.migrations)
    out["abandoned"] = len(s.abandoned)
    out["quorum_shrunk"] = len(app.exits)
    out["clean"] = out["clean"] and not app.exits
    return out


_LEGS = {
    "lossy": _leg_lossy,
    "partition": _leg_partition,
    "storm": _leg_storm,
}


def _fault_free_matches(cfg, ref_losses: List[float]) -> bool:
    """The channel itself must not perturb a fault-free run's output."""
    s = Session(mechanism="pvm", n_hosts=N_HOSTS, seed=0, reliability=True)
    app = PvmOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.run(until=UNTIL_S)
    return app.report.get("losses") == ref_losses


def run_soak_reliability(seeds: int = 20, smoke: bool = False) -> Dict[str, Any]:
    """Run the full lossy-network soak; returns the result document."""
    cfg, horizon = _workload(smoke)
    ref_losses = _reference_losses(cfg)

    legs: Dict[str, Dict[str, Any]] = {name: {"runs": []} for name in _LEGS}
    retransmits: List[float] = []
    dups: List[float] = []
    for seed in range(seeds):
        for name, leg in _LEGS.items():
            run = leg(seed, cfg, horizon, ref_losses)
            run["seed"] = seed
            legs[name]["runs"].append(run)
            retransmits.append(float(run["channel"]["retransmits"]))
            dups.append(float(
                run["channel"]["dup_suppressed"]
                + run["channel"]["e2e_dups_suppressed"]
            ))

    for leg in legs.values():
        runs = leg["runs"]
        leg["completed"] = sum(1 for r in runs if r["completed"])
        leg["matched_reference"] = sum(1 for r in runs if r["matched_reference"])
        leg["clean"] = sum(1 for r in runs if r["clean"])
    legs["partition"]["reprieved"] = sum(
        r["recovery"]["reprieved"] for r in legs["partition"]["runs"]
    )
    legs["storm"]["migrations"] = sum(r["migrations"] for r in legs["storm"]["runs"])
    legs["storm"]["txns_committed"] = sum(
        r["txns"]["committed"] for r in legs["storm"]["runs"]
    )

    determinism = (
        _leg_storm(0, cfg, horizon, ref_losses)
        == _leg_storm(0, cfg, horizon, ref_losses)
    )
    fault_free = _fault_free_matches(cfg, ref_losses)

    ok = (
        all(leg["clean"] == seeds for leg in legs.values())
        and determinism
        and fault_free
    )
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "python": platform.python_version(),
        "seeds": seeds,
        "horizon_s": horizon,
        "workload": {
            "data_bytes": cfg.data_bytes,
            "iterations": cfg.iterations,
            "n_slaves": cfg.n_slaves,
            "n_hosts": N_HOSTS,
        },
        "faults_per_seed": {
            "lossy": FAULTS_LOSSY,
            "partition": FAULTS_PARTITION,
            "storm": FAULTS_STORM,
        },
        "legs": legs,
        "retransmits_per_run": _dist(retransmits),
        "dups_suppressed_per_run": _dist(dups),
        "determinism_identical": determinism,
        "fault_free_reliability_matches": fault_free,
        "ok": ok,
    }


def render_soak_reliability(doc: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`run_soak_reliability` document."""
    out = [
        f"== reliability soak: {doc['seeds']} seeds x "
        f"{len(doc['legs'])} legs ({'smoke' if doc['smoke'] else 'full'}) =="
    ]
    for name, leg in doc["legs"].items():
        bits = [
            f"completed {leg['completed']}/{doc['seeds']}",
            f"matched {leg['matched_reference']}/{doc['seeds']}",
            f"clean {leg['clean']}/{doc['seeds']}",
        ]
        if "reprieved" in leg:
            bits.append(f"reprieved {leg['reprieved']}")
        if "migrations" in leg:
            bits.append(
                f"migrations {leg['migrations']} "
                f"(txns committed {leg['txns_committed']})"
            )
        out.append(f"  {name:10s} " + ", ".join(bits))
    for key in ("retransmits_per_run", "dups_suppressed_per_run"):
        d = doc[key]
        if d:
            out.append(
                f"  {key:24s} n={d['n']} min={d['min']:.0f} mean={d['mean']:.1f} "
                f"p50={d['p50']:.0f} p95={d['p95']:.0f} max={d['max']:.0f}"
            )
    out.append(
        f"  determinism={'identical' if doc['determinism_identical'] else 'DIVERGED'} "
        f"fault_free_matches={doc['fault_free_reliability_matches']} "
        f"ok={doc['ok']}"
    )
    return "\n".join(out)
