"""Control-plane soak harness (``python -m repro soak --control``).

The crash soak proves the recovery subsystem survives dying *hosts* and
the reliability soak a dying *network*; this harness proves the system
survives a dying *brain*.  For every seed it runs the Opt workload on a
control-armed MPVM worknet and kills the controller once per run — at
each of the controller FSM states a takeover can interrupt:

* **idle**           — nothing in flight; the cheapest takeover.
* **batch-round**    — mid-eviction, GS migration records still open.
* **txn-prepared**   — a migration's state is off-host, its transaction
  ``prepared`` but not yet committed.
* **recovery-fence** — mid-recovery of a genuine data-plane host crash
  (fence written, restart in flight).

A watcher process polls :attr:`ControlPlane.fsm_state` and fires
:meth:`ControlPlane.crash` the first instant the target state holds, so
the crash lands *inside* the window rather than at a guessed timestamp.
After the standby takes over, the run must still complete with output
identical to the fault-free reference, zero lost tasks, zero
exactly-once violations, and a post-takeover command accepted under the
new epoch.  After the run, the captured pre-crash handle plays the
partitioned zombie ex-controller: every command it issues must bounce
off the epoch gate, and the transaction logs' audit trail must show no
command accepted under a stale epoch.  The committed
``BENCH_control.json`` at the repo root holds the full 20-seed run,
takeover-latency distribution included.
"""

from __future__ import annotations

import platform
from typing import Any, Dict, List, Optional

from ..api import Session
from ..faults import FaultPlan, HostCrash
from ..migration.txn import StaleEpochCommand
from ..pvm.errors import PvmError
from .soak_common import (
    N_HOSTS,
    NotifyOpt,
    SLAVE_HOSTS,
    UNTIL_S,
    dist,
    recovery_records_json,
    reference_losses,
    soak_workload,
)

__all__ = ["SCHEMA", "STATES", "run_soak_control", "render_soak_control"]

SCHEMA = "repro-bench-control/1"

#: The controller FSM states the soak crashes the brain in, one run per
#: (seed, state).
STATES = ("idle", "batch-round", "txn-prepared", "recovery-fence")

#: Watcher poll period: fine enough to land inside the short
#: txn-prepared window.
POLL_S = 0.002

#: When the stimulus lands, relative to the run start: early enough
#: that the Opt iterations are still going in both smoke and full
#: workloads, late enough that data distribution is done.
EVICT_AFTER_SPAWN_S = 0.8
HOST_CRASH_AT_S = 1.2


def _total_stale(s: Session) -> int:
    return sum(
        len(getattr(c, "txns").stale_rejections)
        for c in s._coordinators
        if getattr(c, "txns", None) is not None
    )


def _txn_violations(s: Session) -> List[str]:
    out: List[str] = []
    for c in s._coordinators:
        txns = getattr(c, "txns", None)
        if txns is not None:
            out.extend(txns.verify())
    return out


def _epoch_audit(s: Session) -> List[str]:
    """Every committed epoch-stamped txn must have begun while its epoch
    ruled — the txn-log proof that no stale command was ever accepted."""
    assert s.control is not None
    # Epoch e rules from boundaries[e] until the next takeover.
    boundaries = {1: 0.0}
    for rec in s.control.takeovers:
        boundaries[rec.new_epoch] = rec.t_takeover

    def ruling_at(t: float) -> int:
        return max(
            (e for e, t0 in boundaries.items() if t0 <= t),
            default=1,
        )

    violations: List[str] = []
    for c in s._coordinators:
        txns = getattr(c, "txns", None)
        if txns is None:
            continue
        for txn in txns.committed():
            if txn.epoch is not None and txn.epoch != ruling_at(txn.t_begin):
                violations.append(
                    f"{txn!r}: committed under epoch {txn.epoch} but epoch "
                    f"{ruling_at(txn.t_begin)} ruled at t={txn.t_begin:g}"
                )
    return violations


def _zombie_leg(s: Session, zombie: Any) -> Dict[str, Any]:
    """The partitioned ex-controller keeps issuing orders; count them
    all bouncing off the epoch gate (run after the simulation ends —
    refusal is synchronous)."""
    assert s.control is not None
    if zombie is None:
        return {"attempts": 0, "refused": 0, "clean": False}
    attempts = refused = 0

    any_task = None
    for h in s.cluster.hosts:
        units = s.vm.movable_units(h) if h.up else []
        if units:
            any_task = units[0]
            break
    if any_task is None:
        # Workload finished and every unit exited: the zombie orders a
        # ghost of a finished task around; the gate refuses before the
        # unit is dereferenced beyond its label.
        any_task = type("Ghost", (), {"name": "t-exited"})()

    # Order 1: single migration through the pvmd command path.
    before = _total_stale(s)
    attempts += 1
    try:
        zombie.migrate(any_task, s.host(2))
    except StaleEpochCommand:
        pass
    refused += _total_stale(s) - before

    # Order 2: batch eviction.
    before = _total_stale(s)
    attempts += 1
    zombie.migrate_batch([(any_task, s.host(3))])
    refused += _total_stale(s) - before

    # Order 3: adjudicate a healthy host dead (the double-restart
    # vector); the plane must refuse, and the gate must log it.
    before_gate = len(s.control.gate.rejections)
    attempts += 1
    accepted = zombie.confirm_crash(s.host(3))
    if not accepted and len(s.control.gate.rejections) == before_gate + 1:
        refused += 1

    return {
        "attempts": attempts,
        "refused": refused,
        "stale_handle": bool(zombie.stale),
        "clean": refused == attempts and bool(zombie.stale),
    }


def _run_one(
    seed: int, state: str, cfg, horizon: float, ref_losses: List[float]
) -> Dict[str, Any]:
    plan: Optional[FaultPlan] = None
    if state == "recovery-fence":
        # A genuine data-plane crash whose recovery the brain dies in.
        plan = FaultPlan(
            faults=(HostCrash(host=f"hp720-{N_HOSTS - 1}", at_s=HOST_CRASH_AT_S),)
        )
    s = Session(
        mechanism="mpvm", n_hosts=N_HOSTS, seed=seed, faults=plan, control=True
    )
    assert s.control is not None
    app = NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()

    probe = {
        "state_hit": False,
        "t_crash": None,
        "took_over": False,
        "post_cmd_admitted": False,
    }
    zombie_box: List[Any] = []

    def protector():
        while len(app.slave_tids) < cfg.n_slaves:
            yield s.sim.timeout(0.05)
        for tid in app.slave_tids:
            s.protect(s.vm.task(tid))

    def evictor():
        # Drives the GS into batch-round / txn-prepared windows.
        while len(app.slave_tids) < cfg.n_slaves:
            yield s.sim.timeout(0.05)
        yield s.sim.timeout(EVICT_AFTER_SPAWN_S)
        try:
            events = s.reclaim(s.host(1))
        except PvmError:
            return
        for ev in events:
            try:
                yield ev
            except PvmError:
                pass  # abandoned eviction: the unit stays put

    def watcher():
        plane = s.control
        while len(app.slave_tids) < cfg.n_slaves:
            yield s.sim.timeout(POLL_S)
        yield s.sim.timeout(0.5)  # let the workload actually get going
        while plane.fsm_state != state:
            if "total_time" in app.report:
                return  # window never opened this run
            yield s.sim.timeout(POLL_S)
        probe["state_hit"] = True
        probe["t_crash"] = round(s.sim.now, 6)
        zombie_box.append(plane.handle)
        plane.crash(reason=f"soak:{state}")
        # Wait out the succession, then prove the new incarnation is in
        # command: its orders are admitted (a stale one would raise).
        while plane.down:
            yield s.sim.timeout(POLL_S)
        probe["took_over"] = True
        for h in s.cluster.hosts:
            units = s.vm.movable_units(h) if h.up else []
            if units:
                dst = s.scheduler.pick_destination(exclude=(h.name,))
                if dst is None:
                    break
                try:
                    yield plane.handle.migrate(units[0], dst)
                except StaleEpochCommand:
                    return
                except PvmError:
                    pass  # admitted but failed downstream: still fenced-in
                probe["post_cmd_admitted"] = True
                break
        else:
            probe["post_cmd_admitted"] = True  # nothing left to command

    s.sim.process(protector(), name="soak:protect").defuse()
    if state in ("batch-round", "txn-prepared"):
        s.sim.process(evictor(), name="soak:evict").defuse()
    s.sim.process(watcher(), name="soak:watch").defuse()
    s.run(until=UNTIL_S)

    records = recovery_records_json(s)
    lost = sum(1 for r in records for t in r["tasks"] if t["outcome"] == "lost")
    restarted = sum(
        1 for r in records for t in r["tasks"] if t["outcome"] == "restarted"
    )
    takeovers = s.control.takeovers
    violations = _txn_violations(s)
    epoch_violations = _epoch_audit(s)
    zombie = _zombie_leg(s, zombie_box[0] if zombie_box else None)
    run = {
        "seed": seed,
        "state": state,
        "completed": "total_time" in app.report,
        "sim_time_s": round(app.report.get("total_time", 0.0), 6),
        "matched_reference": app.report.get("losses") == ref_losses,
        "quorum_shrunk": len(app.exits),
        "state_hit": probe["state_hit"],
        "t_crash": probe["t_crash"],
        "takeovers": len(takeovers),
        "takeover_latency_s": (
            round(takeovers[0].latency, 6) if takeovers else None
        ),
        "epochs": s.control.epoch,
        "adopted_txns": sum(t.adopted_txns for t in takeovers),
        "aborted_txns": sum(t.aborted_txns for t in takeovers),
        "replanned": sum(t.replanned for t in takeovers),
        "restored_quarantines": sum(t.restored_quarantines for t in takeovers),
        "post_cmd_admitted": probe["post_cmd_admitted"],
        "restarted": restarted,
        "lost": lost,
        "txn_violations": violations,
        "epoch_violations": epoch_violations,
        "zombie": zombie,
    }
    run["clean"] = bool(
        run["completed"]
        and run["matched_reference"]
        and run["quorum_shrunk"] == 0
        and run["state_hit"]
        and run["takeovers"] == 1
        and run["post_cmd_admitted"]
        and run["lost"] == 0
        and not violations
        and not epoch_violations
        and zombie["clean"]
    )
    return run


def _armed_uncrashed_matches(cfg, ref_losses: List[float]) -> bool:
    """An armed-but-never-crashed control plane must not perturb the
    workload's output (the epoch stamps and journal are pure
    bookkeeping)."""
    s = Session(mechanism="mpvm", n_hosts=N_HOSTS, seed=0, control=True)
    app = NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.run(until=UNTIL_S)
    assert s.control is not None
    return (
        app.report.get("losses") == ref_losses
        and len(s.control.takeovers) == 0
        and s.control.epoch == 1
    )


def run_soak_control(seeds: int = 20, smoke: bool = False) -> Dict[str, Any]:
    """Run the full control-plane soak; returns the result document."""
    cfg, horizon = soak_workload(smoke)
    ref_losses = reference_losses(cfg)

    legs: Dict[str, Dict[str, Any]] = {state: {"runs": []} for state in STATES}
    latencies: List[float] = []
    for seed in range(seeds):
        for state in STATES:
            run = _run_one(seed, state, cfg, horizon, ref_losses)
            legs[state]["runs"].append(run)
            if run["takeover_latency_s"] is not None:
                latencies.append(run["takeover_latency_s"])

    for leg in legs.values():
        runs = leg["runs"]
        leg["completed"] = sum(1 for r in runs if r["completed"])
        leg["state_hit"] = sum(1 for r in runs if r["state_hit"])
        leg["clean"] = sum(1 for r in runs if r["clean"])

    totals = {
        "lost": sum(r["lost"] for leg in legs.values() for r in leg["runs"]),
        "txn_violations": sum(
            len(r["txn_violations"]) for leg in legs.values() for r in leg["runs"]
        ),
        "stale_accepted": sum(
            len(r["epoch_violations"]) for leg in legs.values() for r in leg["runs"]
        ),
        "zombie_attempts": sum(
            r["zombie"]["attempts"] for leg in legs.values() for r in leg["runs"]
        ),
        "zombie_refused": sum(
            r["zombie"]["refused"] for leg in legs.values() for r in leg["runs"]
        ),
        "adopted_txns": sum(
            r["adopted_txns"] for leg in legs.values() for r in leg["runs"]
        ),
        "aborted_txns": sum(
            r["aborted_txns"] for leg in legs.values() for r in leg["runs"]
        ),
        "replanned": sum(
            r["replanned"] for leg in legs.values() for r in leg["runs"]
        ),
    }

    determinism = _run_one(
        0, "txn-prepared", cfg, horizon, ref_losses
    ) == _run_one(0, "txn-prepared", cfg, horizon, ref_losses)
    unarmed_alike = _armed_uncrashed_matches(cfg, ref_losses)

    ok = (
        all(leg["clean"] == seeds for leg in legs.values())
        and totals["lost"] == 0
        and totals["txn_violations"] == 0
        and totals["stale_accepted"] == 0
        and totals["zombie_refused"] == totals["zombie_attempts"]
        and determinism
        and unarmed_alike
    )
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "python": platform.python_version(),
        "seeds": seeds,
        "states": list(STATES),
        "horizon_s": horizon,
        "workload": {
            "data_bytes": cfg.data_bytes,
            "iterations": cfg.iterations,
            "n_slaves": cfg.n_slaves,
            "n_hosts": N_HOSTS,
        },
        "legs": legs,
        "totals": totals,
        "takeover_latency_s": dist(latencies),
        "determinism_identical": determinism,
        "armed_uncrashed_matches": unarmed_alike,
        "ok": ok,
    }


def render_soak_control(doc: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`run_soak_control` document."""
    out = [
        f"== control soak: {doc['seeds']} seeds x {len(doc['states'])} "
        f"crash states ({'smoke' if doc['smoke'] else 'full'}) =="
    ]
    for name, leg in doc["legs"].items():
        out.append(
            f"  {name:15s} completed {leg['completed']}/{doc['seeds']}, "
            f"hit {leg['state_hit']}/{doc['seeds']}, "
            f"clean {leg['clean']}/{doc['seeds']}"
        )
    t = doc["totals"]
    out.append(
        f"  lost={t['lost']} txn_violations={t['txn_violations']} "
        f"stale_accepted={t['stale_accepted']} "
        f"zombie={t['zombie_refused']}/{t['zombie_attempts']} refused"
    )
    out.append(
        f"  adopted={t['adopted_txns']} aborted={t['aborted_txns']} "
        f"replanned={t['replanned']}"
    )
    d = doc["takeover_latency_s"]
    if d:
        out.append(
            f"  takeover_latency_s    n={d['n']} min={d['min']:.3f} "
            f"mean={d['mean']:.3f} p50={d['p50']:.3f} p95={d['p95']:.3f} "
            f"max={d['max']:.3f}"
        )
    out.append(
        f"  determinism={'identical' if doc['determinism_identical'] else 'DIVERGED'} "
        f"armed_uncrashed_matches={doc['armed_uncrashed_matches']} "
        f"ok={doc['ok']}"
    )
    return "\n".join(out)
