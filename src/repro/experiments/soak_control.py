"""Control-plane soak harness (``python -m repro soak --control``).

The crash soak proves the recovery subsystem survives dying *hosts* and
the reliability soak a dying *network*; this harness proves the system
survives a dying *brain* — and, since the control log is explicitly
replicated (:mod:`repro.control.replication`), a *split* brain.  Three
legs per seed:

* **FSM-state crashes.**  For each controller FSM state a takeover can
  interrupt — ``idle``, ``batch-round``, ``txn-prepared``,
  ``recovery-fence`` — a watcher process polls
  :attr:`ControlPlane.fsm_state` and fires :meth:`ControlPlane.crash`
  the first instant the target state holds, so the crash lands *inside*
  the window rather than at a guessed timestamp.  The plane runs with
  quorum replication armed, so succession is a real staggered election
  after the standbys' lease views expire: the recorded takeover latency
  is the lease residual + candidacy stagger + vote round-trip, a
  genuine distribution rather than a configured constant.
* **Control-plane partition.**  A :class:`NetworkPartition` cuts the
  controller host (the leader *and* the workload master) away from the
  standbys mid-run, then heals.  The minority leader must self-fence —
  its lease expires without a quorum ack — strictly before the majority
  elects a successor; the healed ex-leader must rejoin as a standby;
  and every order the pre-cut zombie handle issues must bounce off the
  epoch gate.
* **Nested failover.**  Two :class:`ControllerCrash` draws, the second
  landing while the brain is still down from the first: it kills the
  standby-turned-heir mid-takeover, and the *next* standby in line must
  complete the succession anyway.

Every leg audits the replication fabric: zero records that never
reached an append quorum, exactly one ruling leader per epoch, zero
commands admitted under a stale or minority epoch, and output identical
to the fault-free reference.  The committed ``BENCH_control.json`` at
the repo root holds the full 20-seed run, takeover-latency distribution
included.
"""

from __future__ import annotations

import platform
from typing import Any, Dict, List, Optional

from ..api import Session
from ..control import ControlConfig
from ..faults import ControllerCrash, FaultPlan, HostCrash, NetworkPartition
from ..migration.txn import StaleEpochCommand
from ..pvm.errors import PvmError
from ..recovery import RecoveryConfig
from .soak_common import (
    N_HOSTS,
    NotifyOpt,
    SLAVE_HOSTS,
    dist,
    recovery_records_json,
    reference_losses,
    soak_workload,
)

__all__ = [
    "LEGS",
    "SCHEMA",
    "STATES",
    "run_soak_control",
    "render_soak_control",
]

SCHEMA = "repro-bench-control/2"

#: The controller FSM states the soak crashes the brain in, one run per
#: (seed, state).
STATES = ("idle", "batch-round", "txn-prepared", "recovery-fence")

#: The selectable soak legs (``--legs``): the four FSM-state crash runs,
#: the split-control-plane partition run, and the nested-failover run.
LEGS = ("states", "partition", "nested")

#: Watcher poll period: fine enough to land inside the short
#: txn-prepared window.
POLL_S = 0.002

#: When the stimulus lands, relative to the run start: early enough
#: that the Opt iterations are still going in both smoke and full
#: workloads, late enough that data distribution is done.
EVICT_AFTER_SPAWN_S = 0.8
HOST_CRASH_AT_S = 1.2

#: Simulated-time bound per run.  The replicated plane renews leases
#: forever, so the simulator never goes idle on its own; the workload
#: finishes well under a minute of simulated time, so a run still going
#: at the bound is a hang.
CONTROL_UNTIL_S = 60.0

#: Partition leg: the cut lands at ``PARTITION_AT_S + seed *
#: PARTITION_JITTER_S`` (per-seed variation of the lease phase it
#: interrupts) and heals ``PARTITION_DURATION_S`` later — well inside
#: the reliable channel's ~36 s retransmit horizon, so the partitioned
#: workload master loses no messages.
PARTITION_AT_S = 2.0
PARTITION_JITTER_S = 0.05
PARTITION_DURATION_S = 3.0

#: Nested leg: first controller crash at ``NESTED_FIRST_AT_S + seed *
#: NESTED_JITTER_S``; the second follows ``NESTED_GAP_S`` later.  A
#: follower's lease view survives the crash for at least ``lease_s -
#: lease_renew_s`` (0.6 s at the defaults), so a 0.3 s gap provably
#: lands while the brain is still down: a nested kill, not a second
#: takeover.
NESTED_FIRST_AT_S = 1.0
NESTED_JITTER_S = 0.037
NESTED_GAP_S = 0.3


def _control_config() -> ControlConfig:
    """Every soak leg arms explicit quorum replication + leases."""
    return ControlConfig(replication=True)


def _total_stale(s: Session) -> int:
    return sum(
        len(getattr(c, "txns").stale_rejections)
        for c in s._coordinators
        if getattr(c, "txns", None) is not None
    )


def _txn_violations(s: Session) -> List[str]:
    out: List[str] = []
    for c in s._coordinators:
        txns = getattr(c, "txns", None)
        if txns is not None:
            out.extend(txns.verify())
    return out


def _epoch_audit(s: Session) -> List[str]:
    """Every committed epoch-stamped txn must have begun while its epoch
    ruled — the txn-log proof that no stale command was ever accepted."""
    assert s.control is not None
    # Epoch e rules from boundaries[e] until the next takeover.
    boundaries = {1: 0.0}
    for rec in s.control.takeovers:
        boundaries[rec.new_epoch] = rec.t_takeover

    def ruling_at(t: float) -> int:
        return max(
            (e for e, t0 in boundaries.items() if t0 <= t),
            default=1,
        )

    violations: List[str] = []
    for c in s._coordinators:
        txns = getattr(c, "txns", None)
        if txns is None:
            continue
        for txn in txns.committed():
            if txn.epoch is not None and txn.epoch != ruling_at(txn.t_begin):
                violations.append(
                    f"{txn!r}: committed under epoch {txn.epoch} but epoch "
                    f"{ruling_at(txn.t_begin)} ruled at t={txn.t_begin:g}"
                )
    return violations


def _replication_audit(s: Session) -> Dict[str, Any]:
    """The fabric's quorum/lease/election counters for one run."""
    assert s.control is not None and s.control.fabric is not None
    audit = s.control.fabric.audit()
    audit["nested_kills"] = s.control.nested_kills
    return audit


def _zombie_leg(s: Session, zombie: Any) -> Dict[str, Any]:
    """The partitioned ex-controller keeps issuing orders; count them
    all bouncing off the epoch gate (run after the simulation ends —
    refusal is synchronous)."""
    assert s.control is not None
    if zombie is None:
        return {"attempts": 0, "refused": 0, "clean": False}
    attempts = refused = 0

    any_task = None
    for h in s.cluster.hosts:
        units = s.vm.movable_units(h) if h.up else []
        if units:
            any_task = units[0]
            break
    if any_task is None:
        # Workload finished and every unit exited: the zombie orders a
        # ghost of a finished task around; the gate refuses before the
        # unit is dereferenced beyond its label.
        any_task = type("Ghost", (), {"name": "t-exited"})()

    # Order 1: single migration through the pvmd command path.
    before = _total_stale(s)
    attempts += 1
    try:
        zombie.migrate(any_task, s.host(2))
    except StaleEpochCommand:
        pass
    refused += _total_stale(s) - before

    # Order 2: batch eviction.
    before = _total_stale(s)
    attempts += 1
    zombie.migrate_batch([(any_task, s.host(3))])
    refused += _total_stale(s) - before

    # Order 3: adjudicate a healthy host dead (the double-restart
    # vector); the plane must refuse, and the gate must log it.
    before_gate = len(s.control.gate.rejections)
    attempts += 1
    accepted = zombie.confirm_crash(s.host(3))
    if not accepted and len(s.control.gate.rejections) == before_gate + 1:
        refused += 1

    return {
        "attempts": attempts,
        "refused": refused,
        "stale_handle": bool(zombie.stale),
        "clean": refused == attempts and bool(zombie.stale),
    }


def _prove_command(s: Session, probe: Dict[str, Any]):
    """Issue one order under the post-takeover incarnation and record
    that the gate admitted it (a stale handle would raise)."""
    plane = s.control
    assert plane is not None
    for h in s.cluster.hosts:
        units = s.vm.movable_units(h) if h.up else []
        if units:
            dst = s.scheduler.pick_destination(exclude=(h.name,))
            if dst is None:
                break
            try:
                yield plane.handle.migrate(units[0], dst)
            except StaleEpochCommand:
                return
            except PvmError:
                pass  # admitted but failed downstream: still fenced-in
            probe["post_cmd_admitted"] = True
            break
    else:
        probe["post_cmd_admitted"] = True  # nothing left to command


def _base_row(
    s: Session, app: NotifyOpt, seed: int, ref_losses: List[float]
) -> Dict[str, Any]:
    """The per-run columns every leg shares (workload + control audit)."""
    assert s.control is not None
    records = recovery_records_json(s)
    lost = sum(1 for r in records for t in r["tasks"] if t["outcome"] == "lost")
    restarted = sum(
        1 for r in records for t in r["tasks"] if t["outcome"] == "restarted"
    )
    takeovers = s.control.takeovers
    return {
        "seed": seed,
        "completed": "total_time" in app.report,
        "sim_time_s": round(app.report.get("total_time", 0.0), 6),
        "matched_reference": app.report.get("losses") == ref_losses,
        "quorum_shrunk": len(app.exits),
        "takeovers": len(takeovers),
        "takeover_latency_s": (
            round(takeovers[0].latency, 6) if takeovers else None
        ),
        "epochs": s.control.epoch,
        "adopted_txns": sum(t.adopted_txns for t in takeovers),
        "aborted_txns": sum(t.aborted_txns for t in takeovers),
        "replanned": sum(t.replanned for t in takeovers),
        "restored_quarantines": sum(t.restored_quarantines for t in takeovers),
        "restarted": restarted,
        "lost": lost,
        "txn_violations": _txn_violations(s),
        "epoch_violations": _epoch_audit(s),
        "replication": _replication_audit(s),
    }


def _quorum_clean(run: Dict[str, Any]) -> bool:
    """The replication-fabric invariants every leg demands."""
    rep = run["replication"]
    return bool(
        rep["appends_undurable"] == 0
        and rep["multi_leader_epochs"] == 0
        and run["lost"] == 0
        and not run["txn_violations"]
        and not run["epoch_violations"]
        and run["zombie"]["clean"]
    )


def _run_one(
    seed: int, state: str, cfg, horizon: float, ref_losses: List[float]
) -> Dict[str, Any]:
    plan: Optional[FaultPlan] = None
    if state == "recovery-fence":
        # A genuine data-plane crash whose recovery the brain dies in.
        plan = FaultPlan(
            faults=(HostCrash(host=f"hp720-{N_HOSTS - 1}", at_s=HOST_CRASH_AT_S),)
        )
    s = Session(
        mechanism="mpvm",
        n_hosts=N_HOSTS,
        seed=seed,
        faults=plan,
        control=_control_config(),
    )
    assert s.control is not None
    app = NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()

    probe = {
        "state_hit": False,
        "t_crash": None,
        "took_over": False,
        "post_cmd_admitted": False,
    }
    zombie_box: List[Any] = []

    def protector():
        while len(app.slave_tids) < cfg.n_slaves:
            yield s.sim.timeout(0.05)
        for tid in app.slave_tids:
            s.protect(s.vm.task(tid))

    def evictor():
        # Drives the GS into batch-round / txn-prepared windows.
        while len(app.slave_tids) < cfg.n_slaves:
            yield s.sim.timeout(0.05)
        yield s.sim.timeout(EVICT_AFTER_SPAWN_S)
        try:
            events = s.reclaim(s.host(1))
        except PvmError:
            return
        for ev in events:
            try:
                yield ev
            except PvmError:
                pass  # abandoned eviction: the unit stays put

    def watcher():
        plane = s.control
        while len(app.slave_tids) < cfg.n_slaves:
            yield s.sim.timeout(POLL_S)
        yield s.sim.timeout(0.5)  # let the workload actually get going
        while plane.fsm_state != state:
            if "total_time" in app.report:
                return  # window never opened this run
            yield s.sim.timeout(POLL_S)
        probe["state_hit"] = True
        probe["t_crash"] = round(s.sim.now, 6)
        zombie_box.append(plane.handle)
        plane.crash(reason=f"soak:{state}")
        # Wait out the succession — a real staggered election now, not
        # a fixed delay — then prove the new incarnation is in command:
        # its orders are admitted (a stale one would raise).
        while plane.down:
            yield s.sim.timeout(POLL_S)
        probe["took_over"] = True
        yield from _prove_command(s, probe)

    s.sim.process(protector(), name="soak:protect").defuse()
    if state in ("batch-round", "txn-prepared"):
        s.sim.process(evictor(), name="soak:evict").defuse()
    s.sim.process(watcher(), name="soak:watch").defuse()
    s.run(until=CONTROL_UNTIL_S)

    run = _base_row(s, app, seed, ref_losses)
    run["state"] = state
    run["state_hit"] = probe["state_hit"]
    run["t_crash"] = probe["t_crash"]
    run["post_cmd_admitted"] = probe["post_cmd_admitted"]
    run["zombie"] = _zombie_leg(s, zombie_box[0] if zombie_box else None)
    run["clean"] = bool(
        run["completed"]
        and run["matched_reference"]
        and run["quorum_shrunk"] == 0
        and run["state_hit"]
        and run["takeovers"] == 1
        and run["post_cmd_admitted"]
        and _quorum_clean(run)
    )
    return run


def _run_partition(
    seed: int, cfg, horizon: float, ref_losses: List[float]
) -> Dict[str, Any]:
    """Split the control plane: cut the leader away from every standby."""
    t_cut = PARTITION_AT_S + seed * PARTITION_JITTER_S
    t_heal = t_cut + PARTITION_DURATION_S
    plan = FaultPlan(
        faults=(
            NetworkPartition(hosts=("hp720-0",), from_s=t_cut, until_s=t_heal),
        )
    )
    s = Session(
        mechanism="mpvm",
        n_hosts=N_HOSTS,
        seed=seed,
        faults=plan,
        control=_control_config(),
        # Grace must outlast the cut so the healed (never-crashed)
        # island is reprieved instead of fenced.
        recovery=RecoveryConfig(partition_grace_s=PARTITION_DURATION_S + 4.0),
        reliability=True,
    )
    assert s.control is not None
    app = NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()

    probe = {"took_over": False, "post_cmd_admitted": False}
    zombie_box: List[Any] = []

    def watcher():
        plane = s.control
        # Capture the doomed leader's command surface just before the
        # cut: the canonical minority-partition zombie.
        yield s.sim.timeout(max(0.0, t_cut - 0.1))
        zombie_box.append(plane.handle)
        while not plane.down:
            if s.sim.now > t_heal + 10.0:
                return  # the cut never deposed the leader: leg fails
            yield s.sim.timeout(POLL_S)
        while plane.down:
            yield s.sim.timeout(POLL_S)
        probe["took_over"] = True
        yield from _prove_command(s, probe)

    s.sim.process(watcher(), name="soak:watch").defuse()
    s.run(until=CONTROL_UNTIL_S)

    takeovers = s.control.takeovers
    rec = takeovers[0] if takeovers else None
    run = _base_row(s, app, seed, ref_losses)
    run["t_cut"] = round(t_cut, 6)
    run["t_heal"] = round(t_heal, 6)
    run["t_self_fence"] = round(rec.t_crashed, 6) if rec else None
    run["t_takeover"] = round(rec.t_takeover, 6) if rec else None
    # The lease math must order the minority leader's self-fence
    # strictly before the majority elects — that ordering (plus the
    # epoch gate) is what forbids a moment of split rule.
    run["fence_before_takeover"] = bool(
        rec is not None
        and run["replication"]["self_fences"] == 1
        and rec.t_crashed < rec.t_takeover
        and "lease expired" in rec.reason
    )
    run["post_cmd_admitted"] = probe["post_cmd_admitted"]
    run["zombie"] = _zombie_leg(s, zombie_box[0] if zombie_box else None)
    run["clean"] = bool(
        run["completed"]
        and run["matched_reference"]
        and run["quorum_shrunk"] == 0
        and run["takeovers"] == 1
        and run["fence_before_takeover"]
        and run["replication"]["rejoins"] == 1
        and run["post_cmd_admitted"]
        and _quorum_clean(run)
    )
    return run


def _run_nested(
    seed: int, cfg, horizon: float, ref_losses: List[float]
) -> Dict[str, Any]:
    """Crash the brain, then crash its heir mid-takeover."""
    t1 = NESTED_FIRST_AT_S + seed * NESTED_JITTER_S
    plan = FaultPlan(
        faults=(
            ControllerCrash(at_s=t1),
            ControllerCrash(at_s=t1 + NESTED_GAP_S),
        )
    )
    s = Session(
        mechanism="mpvm",
        n_hosts=N_HOSTS,
        seed=seed,
        faults=plan,
        control=_control_config(),
    )
    assert s.control is not None
    app = NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()

    probe = {"took_over": False, "post_cmd_admitted": False}
    zombie_box: List[Any] = []

    def watcher():
        plane = s.control
        yield s.sim.timeout(max(0.0, t1 - 0.05))
        zombie_box.append(plane.handle)
        while not plane.down:
            yield s.sim.timeout(POLL_S)
        while plane.down:
            yield s.sim.timeout(POLL_S)
        probe["took_over"] = True
        yield from _prove_command(s, probe)

    s.sim.process(watcher(), name="soak:watch").defuse()
    s.run(until=CONTROL_UNTIL_S)

    takeovers = s.control.takeovers
    rec = takeovers[0] if takeovers else None
    run = _base_row(s, app, seed, ref_losses)
    run["t_crash"] = round(t1, 6)
    run["nested_kills"] = s.control.nested_kills
    # The heir (succession index 1) died mid-takeover; the replica two
    # deep must have completed the succession instead.
    run["heir_skipped"] = bool(rec is not None and rec.to_host == "hp720-2")
    run["post_cmd_admitted"] = probe["post_cmd_admitted"]
    run["zombie"] = _zombie_leg(s, zombie_box[0] if zombie_box else None)
    run["clean"] = bool(
        run["completed"]
        and run["matched_reference"]
        and run["quorum_shrunk"] == 0
        and run["takeovers"] == 1
        and run["nested_kills"] == 1
        and run["heir_skipped"]
        and run["post_cmd_admitted"]
        and _quorum_clean(run)
    )
    return run


def _armed_uncrashed_matches(cfg, ref_losses: List[float]) -> bool:
    """An armed-but-never-crashed control plane must not perturb the
    workload's output (the epoch stamps and journal are pure
    bookkeeping) — checked for the legacy plane and the replicated one."""
    s = Session(mechanism="mpvm", n_hosts=N_HOSTS, seed=0, control=True)
    app = NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.run(until=CONTROL_UNTIL_S)
    assert s.control is not None
    legacy_ok = (
        app.report.get("losses") == ref_losses
        and len(s.control.takeovers) == 0
        and s.control.epoch == 1
    )
    s = Session(
        mechanism="mpvm", n_hosts=N_HOSTS, seed=0, control=_control_config()
    )
    app = NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.run(until=CONTROL_UNTIL_S)
    assert s.control is not None and s.control.fabric is not None
    return bool(
        legacy_ok
        and app.report.get("losses") == ref_losses
        and len(s.control.takeovers) == 0
        and s.control.epoch == 1
        and s.control.fabric.elections_started == 0
        and not s.control.fabric.undurable()
    )


def run_soak_control(
    seeds: int = 20, smoke: bool = False, legs: Optional[List[str]] = None
) -> Dict[str, Any]:
    """Run the control-plane soak; returns the result document.

    ``legs`` selects a subset of :data:`LEGS` (default: all three).
    """
    chosen = list(LEGS) if legs is None else list(legs)
    unknown = sorted(set(chosen) - set(LEGS))
    if unknown:
        raise ValueError(f"unknown soak legs {unknown}; pick from {list(LEGS)}")
    cfg, horizon = soak_workload(smoke)
    ref_losses = reference_losses(cfg)

    leg_names: List[str] = []
    if "states" in chosen:
        leg_names.extend(STATES)
    if "partition" in chosen:
        leg_names.append("partition")
    if "nested" in chosen:
        leg_names.append("nested")

    legs_doc: Dict[str, Dict[str, Any]] = {name: {"runs": []} for name in leg_names}
    latencies: List[float] = []
    for seed in range(seeds):
        for name in leg_names:
            if name == "partition":
                run = _run_partition(seed, cfg, horizon, ref_losses)
            elif name == "nested":
                run = _run_nested(seed, cfg, horizon, ref_losses)
            else:
                run = _run_one(seed, name, cfg, horizon, ref_losses)
            legs_doc[name]["runs"].append(run)
            if run["takeover_latency_s"] is not None:
                latencies.append(run["takeover_latency_s"])

    for leg in legs_doc.values():
        runs = leg["runs"]
        leg["completed"] = sum(1 for r in runs if r["completed"])
        leg["clean"] = sum(1 for r in runs if r["clean"])

    all_runs = [r for leg in legs_doc.values() for r in leg["runs"]]
    totals = {
        "lost": sum(r["lost"] for r in all_runs),
        "txn_violations": sum(len(r["txn_violations"]) for r in all_runs),
        "stale_accepted": sum(len(r["epoch_violations"]) for r in all_runs),
        "zombie_attempts": sum(r["zombie"]["attempts"] for r in all_runs),
        "zombie_refused": sum(r["zombie"]["refused"] for r in all_runs),
        "adopted_txns": sum(r["adopted_txns"] for r in all_runs),
        "aborted_txns": sum(r["aborted_txns"] for r in all_runs),
        "replanned": sum(r["replanned"] for r in all_runs),
        # Quorum/lease audit: summed over every run of every leg.
        "quorum_undurable": sum(
            r["replication"]["appends_undurable"] for r in all_runs
        ),
        "multi_leader_epochs": sum(
            r["replication"]["multi_leader_epochs"] for r in all_runs
        ),
        "self_fences": sum(r["replication"]["self_fences"] for r in all_runs),
        "nested_kills": sum(r["replication"]["nested_kills"] for r in all_runs),
        "elections_won": sum(
            r["replication"]["elections_won"] for r in all_runs
        ),
        "rejoins": sum(r["replication"]["rejoins"] for r in all_runs),
    }

    determinism = True
    if "states" in chosen:
        determinism = determinism and _run_one(
            0, "txn-prepared", cfg, horizon, ref_losses
        ) == _run_one(0, "txn-prepared", cfg, horizon, ref_losses)
    if "partition" in chosen:
        determinism = determinism and _run_partition(
            0, cfg, horizon, ref_losses
        ) == _run_partition(0, cfg, horizon, ref_losses)
    unarmed_alike = _armed_uncrashed_matches(cfg, ref_losses)

    ok = (
        all(leg["clean"] == seeds for leg in legs_doc.values())
        and totals["lost"] == 0
        and totals["txn_violations"] == 0
        and totals["stale_accepted"] == 0
        and totals["zombie_refused"] == totals["zombie_attempts"]
        and totals["quorum_undurable"] == 0
        and totals["multi_leader_epochs"] == 0
        and determinism
        and unarmed_alike
    )
    cc = _control_config()
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "python": platform.python_version(),
        "seeds": seeds,
        "states": list(STATES),
        "leg_names": leg_names,
        "horizon_s": horizon,
        "workload": {
            "data_bytes": cfg.data_bytes,
            "iterations": cfg.iterations,
            "n_slaves": cfg.n_slaves,
            "n_hosts": N_HOSTS,
        },
        "control": {
            "replication": True,
            "lease_s": cc.lease_s,
            "lease_renew_s": cc.lease_renew_s,
            "election_stagger_s": cc.election_stagger_s,
            "election_timeout_s": cc.election_timeout_s,
        },
        "legs": legs_doc,
        "totals": totals,
        "takeover_latency_s": dist(latencies),
        "determinism_identical": determinism,
        "armed_uncrashed_matches": unarmed_alike,
        "ok": ok,
    }


def render_soak_control(doc: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`run_soak_control` document."""
    out = [
        f"== control soak: {doc['seeds']} seeds x {len(doc['leg_names'])} "
        f"legs ({'smoke' if doc['smoke'] else 'full'}) =="
    ]
    for name, leg in doc["legs"].items():
        out.append(
            f"  {name:15s} completed {leg['completed']}/{doc['seeds']}, "
            f"clean {leg['clean']}/{doc['seeds']}"
        )
    t = doc["totals"]
    out.append(
        f"  lost={t['lost']} txn_violations={t['txn_violations']} "
        f"stale_accepted={t['stale_accepted']} "
        f"zombie={t['zombie_refused']}/{t['zombie_attempts']} refused"
    )
    out.append(
        f"  quorum_undurable={t['quorum_undurable']} "
        f"multi_leader_epochs={t['multi_leader_epochs']} "
        f"self_fences={t['self_fences']} nested_kills={t['nested_kills']} "
        f"elections_won={t['elections_won']} rejoins={t['rejoins']}"
    )
    out.append(
        f"  adopted={t['adopted_txns']} aborted={t['aborted_txns']} "
        f"replanned={t['replanned']}"
    )
    d = doc["takeover_latency_s"]
    if d:
        out.append(
            f"  takeover_latency_s    n={d['n']} min={d['min']:.3f} "
            f"mean={d['mean']:.3f} p50={d['p50']:.3f} p95={d['p95']:.3f} "
            f"max={d['max']:.3f}"
        )
    out.append(
        f"  determinism={'identical' if doc['determinism_identical'] else 'DIVERGED'} "
        f"armed_uncrashed_matches={doc['armed_uncrashed_matches']} "
        f"ok={doc['ok']}"
    )
    return "\n".join(out)
