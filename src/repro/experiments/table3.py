"""Table 3 — PVM vs. UPVM quiet-case runtime, 0.6 MB SPMD_opt.

Paper: 4.92 s on plain PVM vs 4.75 s on UPVM.  UPVM is *faster*: the
master ULP and one slave ULP share a process, so their per-iteration
net/gradient exchange is a zero-copy buffer hand-off instead of two
trips through the local pvmd — which more than pays for UPVM's extra
remote-message header (§4.2.1).
"""

from __future__ import annotations

from ..apps.opt import MB_DEC, OptConfig, PvmOpt, SpmdOpt
from ..pvm import PvmSystem
from ..upvm import UpvmSystem
from .harness import ExperimentResult, quiet_cluster

__all__ = ["run", "PAPER"]

PAPER = {"PVM": 4.92, "UPVM": 4.75}

DATA_BYTES = 0.6 * MB_DEC
ITERATIONS = 7  # calibrated: lands the PVM column near the paper's 4.92 s


def _config() -> OptConfig:
    return OptConfig(data_bytes=DATA_BYTES, iterations=ITERATIONS)


def run_pvm() -> float:
    """SPMD_opt's structure on plain PVM: three tasks, master+slave
    co-resident on host 0 (communicating through the local daemon)."""
    cl = quiet_cluster(n_hosts=2, trace=False)
    vm = PvmSystem(cl)
    app = PvmOpt(vm, _config())
    app.start()
    cl.run(until=3600)
    assert app.report
    return app.report["train_time"]


def run_upvm() -> float:
    """The same structure as ULPs: master ULP0 + slave ULP1 in one
    process on host 0, slave ULP2 on host 1."""
    cl = quiet_cluster(n_hosts=2, trace=False)
    vm = UpvmSystem(cl)
    app = SpmdOpt(vm, _config())
    app.start()
    cl.run(until=app.app.all_done)
    assert app.report
    return app.report["train_time"]


def run() -> ExperimentResult:
    t_pvm = run_pvm()
    t_upvm = run_upvm()
    result = ExperimentResult(
        exp_id="table3",
        title="PVM vs UPVM, normal (no migration) execution, 0.6 MB SPMD_opt",
        columns=["system", "runtime_s"],
        rows=[
            {"system": "PVM", "runtime_s": t_pvm},
            {"system": "UPVM", "runtime_s": t_upvm},
        ],
        paper_rows=[
            {"system": "PVM", "runtime_s": PAPER["PVM"]},
            {"system": "UPVM", "runtime_s": PAPER["UPVM"]},
        ],
    )
    result.check("UPVM is faster than PVM (local hand-off wins)", t_upvm < t_pvm)
    result.check("UPVM advantage is modest (< 10%)", t_upvm > 0.90 * t_pvm)
    result.check("runtime within 35% of the paper's ~4.9 s",
                 0.65 * PAPER["PVM"] < t_pvm < 1.35 * PAPER["PVM"])
    result.notes = f"UPVM speedup: {(1 - t_upvm / t_pvm) * 100:.2f}% (paper: 3.5%)"
    return result


if __name__ == "__main__":
    print(run().format())
