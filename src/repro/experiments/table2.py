"""Table 2 — MPVM obtrusiveness and migration cost vs. data size.

Paper: migrating one PVM_opt slave (which holds *half* the listed
training-set size) for 0.6–20.8 MB sets.  Raw TCP is the lower bound;
the obtrusiveness/raw ratio falls from 4.3 toward 1.25 as the fixed
costs (flush, skeleton exec, connection set-up) amortize.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.opt import MB_DEC, OptConfig, PvmOpt
from ..mpvm import MpvmSystem
from .harness import ExperimentResult, poll_until, quiet_cluster
from .rawtcp import measure_raw_tcp

__all__ = ["run", "PAPER_ROWS", "SIZES_MB", "migrate_one_slave"]

SIZES_MB = [0.6, 4.2, 5.8, 9.8, 13.5, 20.8]

PAPER_ROWS: List[Dict] = [
    {"data_mb": 0.6, "raw_tcp_s": 0.27, "obtrusiveness_s": 1.17, "ratio": 4.3, "migration_s": 1.39},
    {"data_mb": 4.2, "raw_tcp_s": 1.82, "obtrusiveness_s": 2.93, "ratio": 1.56, "migration_s": 3.15},
    {"data_mb": 5.8, "raw_tcp_s": 2.51, "obtrusiveness_s": 3.90, "ratio": 1.55, "migration_s": 4.10},
    {"data_mb": 9.8, "raw_tcp_s": 4.42, "obtrusiveness_s": 5.92, "ratio": 1.34, "migration_s": 6.18},
    {"data_mb": 13.5, "raw_tcp_s": 6.17, "obtrusiveness_s": 8.42, "ratio": 1.36, "migration_s": 9.25},
    {"data_mb": 20.8, "raw_tcp_s": 10.00, "obtrusiveness_s": 12.52, "ratio": 1.25, "migration_s": 13.10},
]


def migrate_one_slave(data_mb: float, params=None):
    """Run PVM_opt, migrate the host-0 slave to host 1, return stats.

    ``params`` overrides the hardware model (sensitivity ablation)."""
    cl = quiet_cluster(n_hosts=2, trace=False, params=params)
    vm = MpvmSystem(cl)
    # Plenty of iterations: the run must outlive the migration.
    app = PvmOpt(vm, OptConfig(data_bytes=data_mb * MB_DEC, iterations=500))
    app.start()
    out = {}

    def driver():
        # Wait for steady state: both shards delivered and nothing large
        # left in the daemon pipelines (the paper migrates during normal
        # iteration, not during the initial data distribution).
        yield from poll_until(
            cl.sim,
            lambda: len(app.slave_tids) == 2
            and all(
                vm.tasks.get(t) is not None
                and vm.task(t).user_state_bytes > 0
                and vm.in_flight_to(t) == 0
                for t in app.slave_tids
            ),
        )
        yield cl.sim.timeout(1.0)
        done = vm.request_migration(vm.task(app.slave_tids[0]), cl.host(1))
        yield done
        out["stats"] = done.value

    drv = cl.sim.process(driver())
    cl.run(until=drv)
    return out["stats"]


def run() -> ExperimentResult:
    rows = []
    for mb in SIZES_MB:
        raw = measure_raw_tcp(mb / 2 * MB_DEC)  # the slave holds half
        stats = migrate_one_slave(mb)
        rows.append({
            "data_mb": mb,
            "raw_tcp_s": raw,
            "obtrusiveness_s": stats.obtrusiveness,
            "ratio": stats.obtrusiveness / raw,
            "migration_s": stats.migration_time,
        })
    result = ExperimentResult(
        exp_id="table2",
        title="MPVM obtrusiveness and migration cost vs data size",
        columns=["data_mb", "raw_tcp_s", "obtrusiveness_s", "ratio", "migration_s"],
        rows=rows,
        paper_rows=PAPER_ROWS,
    )
    ratios = [r["ratio"] for r in rows]
    result.check("ratio decreases monotonically with size",
                 all(a >= b - 0.02 for a, b in zip(ratios, ratios[1:])))
    result.check("small-size ratio is large (>= 3)", ratios[0] >= 3.0)
    result.check("large-size ratio approaches 1 (<= 1.45)", ratios[-1] <= 1.45)
    result.check("migration >= obtrusiveness everywhere",
                 all(r["migration_s"] >= r["obtrusiveness_s"] for r in rows))
    result.check(
        "raw TCP within 15% of the paper's",
        all(
            abs(r["raw_tcp_s"] - p["raw_tcp_s"]) / p["raw_tcp_s"] < 0.15
            for r, p in zip(rows, PAPER_ROWS)
        ),
    )
    return result


if __name__ == "__main__":
    print(run().format())
