"""Survivability soak harness (``python -m repro soak``).

The paper's systems only ever lose hosts *announcedly* (an owner
reclaims their machine and the GS vacates it).  The recovery subsystem
(`repro.recovery`) adds survival of unannounced crashes; this harness is
its evidence.  For every seed it draws a 3-crash random schedule with
:meth:`FaultPlan.random` over the worker hosts and throws it at the Opt
application under each mechanism:

* **mpvm** — slaves are checkpoint-protected; a confirmed host death
  fences the host, restarts its slave from the replicated image on a
  survivor, and replays dead letters.  The run must complete with output
  identical to the crash-free run.
* **adm**  — no replicas: dead workers' exemplars are written off and a
  ``HostDelete`` notify drives a re-partition consensus round over the
  survivors.  The run completes with a documented reduced-worker result.
* **pvm_notify** — plain PVM, no checkpoints: the master registers
  ``TaskExit`` notifies on its slaves and shrinks its quorum when one
  dies, completing degraded instead of hanging on ``pvm_recv``.

The harness also asserts the determinism contract (same seed ⇒
identical suspicion timeline and recovery record) and that a fault-free
run under load produces zero suspicions.  The committed
``BENCH_recovery.json`` at the repo root holds the detection-latency and
recovery-time distributions of the full 20-seed run.
"""

from __future__ import annotations

import platform
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..adm.partition import weighted_partition
from ..api import Session
from ..apps.opt import MB_DEC, AdmOpt, OptConfig, PvmOpt
from ..apps.opt.model import CgState, OptModel, cg_step, cg_update_flops
from ..apps.opt.data import bytes_for_exemplars, synthetic_training_set
from ..apps.opt.pvm_opt import TAG_DATA, TAG_GRAD, TAG_STOP, TAG_WEIGHTS
from ..faults import FaultPlan

__all__ = ["SCHEMA", "run_soak", "render_soak"]

SCHEMA = "repro-bench-recovery/1"

#: Notify tag of the soak master's TaskExit subscription.
TAG_EXIT = 104

#: Worker topology: master and GS machine on host 0 (assumed survivable,
#: like the paper's GS), one slave on each of hosts 1..4 — only those
#: four ever crash.
N_HOSTS = 5
CRASH_HOSTS = tuple(f"hp720-{i}" for i in range(1, N_HOSTS))
SLAVE_HOSTS = list(range(1, N_HOSTS))
CRASHES_PER_SEED = 3

#: Simulated-time bound: a leg still running at the bound is a hang.
UNTIL_S = 600.0


class _NotifyOpt(PvmOpt):
    """PVM_opt whose master survives slave deaths via pvm_notify.

    Identical to :class:`PvmOpt` except the master watches its slaves
    with ``pvm_notify(TaskExit)`` and, when one dies unrecoverably,
    writes it out of the gradient quorum instead of blocking forever.
    On MPVM the watch follows restarts (tid rebinds re-key it), so a
    recovered slave keeps reporting and the quorum never shrinks.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Slaves written out of the quorum (visible tids, exit order).
        self.exits: List[int] = []

    def _note_exit(self, ctx, msg, live: set) -> int:
        dead = ctx._map_tid_in(int(msg.buffer.upkint()[0]))
        if dead in live:
            live.discard(dead)
            self.exits.append(dead)
        return dead

    def _master(self, ctx):
        cfg = self.config
        t_start = ctx.now
        model = OptModel(hidden=cfg.hidden, n_categories=cfg.n_categories, seed=cfg.seed)
        state = CgState(params=model.get_params())
        data = (
            synthetic_training_set(
                n=cfg.n_exemplars, n_categories=cfg.n_categories, seed=cfg.seed
            )
            if cfg.real
            else None
        )

        tids = yield from ctx.spawn(
            self._slave_name, count=cfg.n_slaves, where=self.slave_hosts
        )
        self.slave_tids = list(tids)
        # The only portable crash signal PVM offers an application.
        ctx.notify("TaskExit", TAG_EXIT, tids=tids)

        counts = weighted_partition(cfg.n_exemplars, {t: 1.0 for t in tids})
        offset = 0
        for tid in tids:
            k = counts[tid]
            buf = ctx.initsend()
            if cfg.real:
                shard = data.slice(offset, offset + k)
                buf.pkarray(shard.features).pkarray(shard.categories)
            else:
                buf.pkopaque(bytes_for_exemplars(k), "exemplars")
            buf.pkint([k])
            yield from ctx.send(tid, TAG_DATA, buf)
            offset += k
        t_train = ctx.now

        live = set(tids)
        for it in range(cfg.iterations):
            # Exits reported between iterations leave before the mcast.
            while True:
                ex = yield from ctx.nrecv(tag=TAG_EXIT)
                if ex is None:
                    break
                self._note_exit(ctx, ex, live)
            roster = [t for t in tids if t in live]
            wbuf = ctx.initsend()
            if cfg.real:
                wbuf.pkarray(state.params)
            else:
                wbuf.pkopaque(model.net_bytes, "net")
            yield from ctx.mcast(roster, TAG_WEIGHTS, wbuf)

            need = set(roster)
            grad_sum = np.zeros(model.n_params) if cfg.real else None
            loss_sum, count = 0.0, 0
            while need:
                msg = yield from ctx.recv()
                if msg.tag == TAG_EXIT:
                    need.discard(self._note_exit(ctx, msg, live))
                elif msg.tag == TAG_GRAD:
                    if cfg.real:
                        grad_sum += msg.buffer.upkarray()
                        loss_sum += float(msg.buffer.upkdouble()[0])
                    else:
                        msg.buffer.upkopaque()
                    count += int(msg.buffer.upkint()[0])
                    need.discard(msg.src_tid)
            yield from ctx.compute(cg_update_flops(model.n_params), label="cg-step")
            if cfg.real:
                state = cg_step(state, grad_sum, max(count, 1), loss_sum)
            else:
                state.losses.append(2.3 * 0.9**it)

        yield from ctx.mcast([t for t in tids if t in live], TAG_STOP, ctx.initsend())
        self.state = state
        self.report = {
            "total_time": ctx.now - t_start,
            "train_time": ctx.now - t_train,
            "losses": list(state.losses),
            "survivors": len(live),
        }


def _workload(smoke: bool) -> Tuple[OptConfig, float]:
    """The Opt configuration and the crash-schedule horizon."""
    if smoke:
        return OptConfig(data_bytes=int(0.4 * MB_DEC), iterations=4, n_slaves=4), 8.0
    return OptConfig(data_bytes=1 * MB_DEC, iterations=8, n_slaves=4), 12.0


def _plan(seed: int, horizon: float) -> FaultPlan:
    return FaultPlan.random(
        seed, n=CRASHES_PER_SEED, horizon=horizon, hosts=list(CRASH_HOSTS)
    )


def _records_of(s: Session) -> List[Dict[str, Any]]:
    out = []
    for r in s.recovery_records:
        out.append({
            "host": r.host,
            "detection_latency_s": round(r.detection_latency, 6),
            "recovery_time_s": round(r.recovery_time, 6),
            "tasks": [
                {"outcome": t.outcome, "dst": t.dst, "replayed": t.replayed}
                for t in r.tasks
            ],
        })
    return out


def _leg_mpvm(seed: int, cfg: OptConfig, plan: FaultPlan, ref_losses: List[float]):
    s = Session(
        mechanism="mpvm", n_hosts=N_HOSTS, seed=seed, faults=plan, recovery=True
    )
    app = _NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()

    def protector():
        while len(app.slave_tids) < cfg.n_slaves:
            yield s.sim.timeout(0.05)
        for tid in app.slave_tids:
            s.protect(s.vm.task(tid))

    s.sim.process(protector()).defuse()
    s.run(until=UNTIL_S)
    records = _records_of(s)
    lost = sum(1 for r in records for t in r["tasks"] if t["outcome"] == "lost")
    return {
        "seed": seed,
        "completed": "total_time" in app.report,
        "sim_time_s": round(app.report.get("total_time", 0.0), 6),
        "matched_reference": app.report.get("losses") == ref_losses,
        "restarted": sum(
            1 for r in records for t in r["tasks"] if t["outcome"] == "restarted"
        ),
        "lost": lost,
        "records": records,
    }, s


def _leg_adm(seed: int, cfg: OptConfig, plan: FaultPlan):
    s = Session(
        mechanism="adm", n_hosts=N_HOSTS, seed=seed, faults=plan, recovery=True
    )
    app = AdmOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.adopt(app)
    s.run(until=UNTIL_S)
    return {
        "seed": seed,
        "completed": "total_time" in app.report,
        "sim_time_s": round(app.report.get("total_time", 0.0), 6),
        "lost_workers": sorted(app.lost),
        "redistributions": app.report.get("redistributions", 0),
        "records": _records_of(s),
    }, s


def _leg_pvm(seed: int, cfg: OptConfig, plan: FaultPlan, ref_losses: List[float]):
    s = Session(
        mechanism="pvm", n_hosts=N_HOSTS, seed=seed, faults=plan, recovery=True
    )
    app = _NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.run(until=UNTIL_S)
    return {
        "seed": seed,
        "completed": "total_time" in app.report,
        "sim_time_s": round(app.report.get("total_time", 0.0), 6),
        "matched_reference": app.report.get("losses") == ref_losses,
        "survivors": app.report.get("survivors", 0),
        "records": _records_of(s),
    }, s


def _reference_losses(cfg: OptConfig) -> List[float]:
    """The crash-free output every surviving run must reproduce."""
    s = Session(mechanism="pvm", n_hosts=N_HOSTS, seed=0)
    app = PvmOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.run()
    return list(app.report["losses"])


def _fault_free_false_positives(cfg: OptConfig) -> int:
    """Detector transitions during a fault-free run under real load."""
    s = Session(mechanism="pvm", n_hosts=N_HOSTS, seed=0, recovery=True)
    app = PvmOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.run(until=UNTIL_S)
    assert "total_time" in app.report, "fault-free soak run did not finish"
    return len(s.detector.timeline)


def _determinism_fingerprint(seed: int, cfg: OptConfig, plan: FaultPlan):
    run, s = _leg_mpvm(seed, cfg, plan, ref_losses=[])
    return (tuple(s.detector.timeline), repr(run["records"]))


def _dist(values: List[float]) -> Optional[Dict[str, float]]:
    if not values:
        return None
    xs = sorted(values)

    def pct(p: float) -> float:
        return xs[min(len(xs) - 1, int(p * len(xs)))]

    return {
        "n": len(xs),
        "min": round(xs[0], 6),
        "mean": round(sum(xs) / len(xs), 6),
        "p50": round(pct(0.50), 6),
        "p95": round(pct(0.95), 6),
        "max": round(xs[-1], 6),
    }


def run_soak(seeds: int = 20, smoke: bool = False) -> Dict[str, Any]:
    """Run the full survivability soak; returns the result document."""
    cfg, horizon = _workload(smoke)
    ref_losses = _reference_losses(cfg)

    legs: Dict[str, Dict[str, Any]] = {
        "mpvm": {"runs": []}, "adm": {"runs": []}, "pvm_notify": {"runs": []},
    }
    detection: List[float] = []
    recovery: List[float] = []
    for seed in range(seeds):
        plan = _plan(seed, horizon)
        for name, runner in (
            ("mpvm", lambda: _leg_mpvm(seed, cfg, plan, ref_losses)),
            ("adm", lambda: _leg_adm(seed, cfg, plan)),
            ("pvm_notify", lambda: _leg_pvm(seed, cfg, plan, ref_losses)),
        ):
            run, _s = runner()
            legs[name]["runs"].append(run)
            for rec in run["records"]:
                detection.append(rec["detection_latency_s"])
                recovery.append(rec["recovery_time_s"])

    for name, leg in legs.items():
        runs = leg["runs"]
        leg["completed"] = sum(1 for r in runs if r["completed"])
        if name in ("mpvm", "pvm_notify"):
            leg["matched_reference"] = sum(
                1 for r in runs if r["matched_reference"]
            )
        if name == "mpvm":
            leg["restarted"] = sum(r["restarted"] for r in runs)
            leg["lost"] = sum(r["lost"] for r in runs)

    first_plan = _plan(0, horizon)
    determinism = (
        _determinism_fingerprint(0, cfg, first_plan)
        == _determinism_fingerprint(0, cfg, first_plan)
    )
    false_positives = _fault_free_false_positives(cfg)

    all_completed = all(
        leg["completed"] == seeds for leg in legs.values()
    )
    ok = (
        all_completed
        and legs["mpvm"]["matched_reference"] == seeds
        and legs["pvm_notify"]["matched_reference"] == seeds
        and determinism
        and false_positives == 0
    )
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "python": platform.python_version(),
        "seeds": seeds,
        "crashes_per_seed": CRASHES_PER_SEED,
        "horizon_s": horizon,
        "workload": {
            "data_bytes": cfg.data_bytes,
            "iterations": cfg.iterations,
            "n_slaves": cfg.n_slaves,
            "n_hosts": N_HOSTS,
        },
        "legs": legs,
        "detection_latency_s": _dist(detection),
        "recovery_time_s": _dist(recovery),
        "determinism_identical": determinism,
        "fault_free_false_positives": false_positives,
        "ok": ok,
    }


def render_soak(doc: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`run_soak` document."""
    out = [
        f"== recovery soak: {doc['seeds']} seeds x "
        f"{doc['crashes_per_seed']} crashes ({'smoke' if doc['smoke'] else 'full'}) =="
    ]
    for name, leg in doc["legs"].items():
        bits = [f"completed {leg['completed']}/{doc['seeds']}"]
        if "matched_reference" in leg:
            bits.append(f"matched {leg['matched_reference']}/{doc['seeds']}")
        if "restarted" in leg:
            bits.append(f"restarted {leg['restarted']}, lost {leg['lost']}")
        out.append(f"  {name:11s} " + ", ".join(bits))
    for key in ("detection_latency_s", "recovery_time_s"):
        d = doc[key]
        if d:
            out.append(
                f"  {key:20s} n={d['n']} min={d['min']:.3f} mean={d['mean']:.3f} "
                f"p50={d['p50']:.3f} p95={d['p95']:.3f} max={d['max']:.3f}"
            )
    out.append(
        f"  determinism={'identical' if doc['determinism_identical'] else 'DIVERGED'} "
        f"false_positives={doc['fault_free_false_positives']} "
        f"ok={doc['ok']}"
    )
    return "\n".join(out)
