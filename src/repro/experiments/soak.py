"""Survivability soak harness (``python -m repro soak``).

The paper's systems only ever lose hosts *announcedly* (an owner
reclaims their machine and the GS vacates it).  The recovery subsystem
(`repro.recovery`) adds survival of unannounced crashes; this harness is
its evidence.  For every seed it draws a 3-crash random schedule with
:meth:`FaultPlan.random` over the worker hosts and throws it at the Opt
application under each mechanism:

* **mpvm** — slaves are checkpoint-protected; a confirmed host death
  fences the host, restarts its slave from the replicated image on a
  survivor, and replays dead letters.  The run must complete with output
  identical to the crash-free run.
* **adm**  — no replicas: dead workers' exemplars are written off and a
  ``HostDelete`` notify drives a re-partition consensus round over the
  survivors.  The run completes with a documented reduced-worker result.
* **pvm_notify** — plain PVM, no checkpoints: the master registers
  ``TaskExit`` notifies on its slaves and shrinks its quorum when one
  dies, completing degraded instead of hanging on ``pvm_recv``.

The harness also asserts the determinism contract (same seed ⇒
identical suspicion timeline and recovery record) and that a fault-free
run under load produces zero suspicions.  The committed
``BENCH_recovery.json`` at the repo root holds the detection-latency and
recovery-time distributions of the full 20-seed run.

The workload/plan/reference/record helpers shared with the reliability
soak and the scenario runner live in
:mod:`repro.experiments.soak_common`; this module re-exports them under
their historical underscore names.
"""

from __future__ import annotations

import platform
from typing import Any, Dict, List

from ..api import Session
from ..apps.opt import AdmOpt, OptConfig, PvmOpt
from ..faults import FaultPlan
from .soak_common import (
    CRASHES_PER_SEED,
    N_HOSTS,
    NotifyOpt,
    SLAVE_HOSTS,
    UNTIL_S,
    crash_plan,
    dist,
    recovery_records_json,
    reference_losses,
    soak_workload,
)

__all__ = ["SCHEMA", "run_soak", "render_soak"]

SCHEMA = "repro-bench-recovery/1"

# Historical names: the reliability soak and external callers imported
# these before the helpers moved to soak_common.
_NotifyOpt = NotifyOpt
_workload = soak_workload
_plan = crash_plan
_records_of = recovery_records_json
_reference_losses = reference_losses
_dist = dist


def _leg_mpvm(seed: int, cfg: OptConfig, plan: FaultPlan, ref_losses: List[float]):
    s = Session(
        mechanism="mpvm", n_hosts=N_HOSTS, seed=seed, faults=plan, recovery=True
    )
    app = NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()

    def protector():
        while len(app.slave_tids) < cfg.n_slaves:
            yield s.sim.timeout(0.05)
        for tid in app.slave_tids:
            s.protect(s.vm.task(tid))

    s.sim.process(protector()).defuse()
    s.run(until=UNTIL_S)
    records = recovery_records_json(s)
    lost = sum(1 for r in records for t in r["tasks"] if t["outcome"] == "lost")
    return {
        "seed": seed,
        "completed": "total_time" in app.report,
        "sim_time_s": round(app.report.get("total_time", 0.0), 6),
        "matched_reference": app.report.get("losses") == ref_losses,
        "restarted": sum(
            1 for r in records for t in r["tasks"] if t["outcome"] == "restarted"
        ),
        "lost": lost,
        "records": records,
    }, s


def _leg_adm(seed: int, cfg: OptConfig, plan: FaultPlan):
    s = Session(
        mechanism="adm", n_hosts=N_HOSTS, seed=seed, faults=plan, recovery=True
    )
    app = AdmOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.adopt(app)
    s.run(until=UNTIL_S)
    return {
        "seed": seed,
        "completed": "total_time" in app.report,
        "sim_time_s": round(app.report.get("total_time", 0.0), 6),
        "lost_workers": sorted(app.lost),
        "redistributions": app.report.get("redistributions", 0),
        "records": recovery_records_json(s),
    }, s


def _leg_pvm(seed: int, cfg: OptConfig, plan: FaultPlan, ref_losses: List[float]):
    s = Session(
        mechanism="pvm", n_hosts=N_HOSTS, seed=seed, faults=plan, recovery=True
    )
    app = NotifyOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.run(until=UNTIL_S)
    return {
        "seed": seed,
        "completed": "total_time" in app.report,
        "sim_time_s": round(app.report.get("total_time", 0.0), 6),
        "matched_reference": app.report.get("losses") == ref_losses,
        "survivors": app.report.get("survivors", 0),
        "records": recovery_records_json(s),
    }, s


def _fault_free_false_positives(cfg: OptConfig) -> int:
    """Detector transitions during a fault-free run under real load."""
    s = Session(mechanism="pvm", n_hosts=N_HOSTS, seed=0, recovery=True)
    app = PvmOpt(s.vm, cfg, master_host=0, slave_hosts=SLAVE_HOSTS)
    app.start()
    s.run(until=UNTIL_S)
    assert "total_time" in app.report, "fault-free soak run did not finish"
    return len(s.detector.timeline)


def _determinism_fingerprint(seed: int, cfg: OptConfig, plan: FaultPlan):
    run, s = _leg_mpvm(seed, cfg, plan, ref_losses=[])
    return (tuple(s.detector.timeline), repr(run["records"]))


def run_soak(seeds: int = 20, smoke: bool = False) -> Dict[str, Any]:
    """Run the full survivability soak; returns the result document."""
    cfg, horizon = soak_workload(smoke)
    ref_losses = reference_losses(cfg)

    legs: Dict[str, Dict[str, Any]] = {
        "mpvm": {"runs": []}, "adm": {"runs": []}, "pvm_notify": {"runs": []},
    }
    detection: List[float] = []
    recovery: List[float] = []
    for seed in range(seeds):
        plan = crash_plan(seed, horizon)
        for name, runner in (
            ("mpvm", lambda: _leg_mpvm(seed, cfg, plan, ref_losses)),
            ("adm", lambda: _leg_adm(seed, cfg, plan)),
            ("pvm_notify", lambda: _leg_pvm(seed, cfg, plan, ref_losses)),
        ):
            run, _s = runner()
            legs[name]["runs"].append(run)
            for rec in run["records"]:
                detection.append(rec["detection_latency_s"])
                recovery.append(rec["recovery_time_s"])

    for name, leg in legs.items():
        runs = leg["runs"]
        leg["completed"] = sum(1 for r in runs if r["completed"])
        if name in ("mpvm", "pvm_notify"):
            leg["matched_reference"] = sum(
                1 for r in runs if r["matched_reference"]
            )
        if name == "mpvm":
            leg["restarted"] = sum(r["restarted"] for r in runs)
            leg["lost"] = sum(r["lost"] for r in runs)

    first_plan = crash_plan(0, horizon)
    determinism = (
        _determinism_fingerprint(0, cfg, first_plan)
        == _determinism_fingerprint(0, cfg, first_plan)
    )
    false_positives = _fault_free_false_positives(cfg)

    all_completed = all(
        leg["completed"] == seeds for leg in legs.values()
    )
    ok = (
        all_completed
        and legs["mpvm"]["matched_reference"] == seeds
        and legs["pvm_notify"]["matched_reference"] == seeds
        and determinism
        and false_positives == 0
    )
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "python": platform.python_version(),
        "seeds": seeds,
        "crashes_per_seed": CRASHES_PER_SEED,
        "horizon_s": horizon,
        "workload": {
            "data_bytes": cfg.data_bytes,
            "iterations": cfg.iterations,
            "n_slaves": cfg.n_slaves,
            "n_hosts": N_HOSTS,
        },
        "legs": legs,
        "detection_latency_s": dist(detection),
        "recovery_time_s": dist(recovery),
        "determinism_identical": determinism,
        "fault_free_false_positives": false_positives,
        "ok": ok,
    }


def render_soak(doc: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`run_soak` document."""
    out = [
        f"== recovery soak: {doc['seeds']} seeds x "
        f"{doc['crashes_per_seed']} crashes ({'smoke' if doc['smoke'] else 'full'}) =="
    ]
    for name, leg in doc["legs"].items():
        bits = [f"completed {leg['completed']}/{doc['seeds']}"]
        if "matched_reference" in leg:
            bits.append(f"matched {leg['matched_reference']}/{doc['seeds']}")
        if "restarted" in leg:
            bits.append(f"restarted {leg['restarted']}, lost {leg['lost']}")
        out.append(f"  {name:11s} " + ", ".join(bits))
    for key in ("detection_latency_s", "recovery_time_s"):
        d = doc[key]
        if d:
            out.append(
                f"  {key:20s} n={d['n']} min={d['min']:.3f} mean={d['mean']:.3f} "
                f"p50={d['p50']:.3f} p95={d['p95']:.3f} max={d['max']:.3f}"
            )
    out.append(
        f"  determinism={'identical' if doc['determinism_identical'] else 'DIVERGED'} "
        f"false_positives={doc['fault_free_false_positives']} "
        f"ok={doc['ok']}"
    )
    return "\n".join(out)
