"""Regeneration of every table and figure in the paper's evaluation.

One module per exhibit (``table1`` … ``table6``, ``figures``), a shared
harness, and :mod:`repro.experiments.report` to run them all.
"""

from .harness import ExperimentResult, poll_until, quiet_cluster
from .rawtcp import measure_raw_tcp
from .report import EXPERIMENTS, render_report, run_all

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "measure_raw_tcp",
    "poll_until",
    "quiet_cluster",
    "render_report",
    "run_all",
]
