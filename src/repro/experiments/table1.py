"""Table 1 — PVM vs. MPVM quiet-case runtime (no migration).

Paper: PVM_opt on the 9 MB training set runs in 198 s under both PVM and
MPVM — the re-entrancy flags, tid re-mapping and re-implemented recv are
in the noise for an application with large, infrequent messages (§4.1.1).
"""

from __future__ import annotations

from ..apps.opt import MB_DEC, OptConfig, PvmOpt
from ..mpvm import MpvmSystem
from ..pvm import PvmSystem
from .harness import ExperimentResult, quiet_cluster

__all__ = ["run", "PAPER"]

PAPER = {"PVM": 198.0, "MPVM": 198.0}

#: 9 MB training set; 17 CG iterations lands the quiet-case runtime in
#: the paper's ~200 s regime at our PA-RISC calibration.
DATA_BYTES = 9 * MB_DEC
ITERATIONS = 17


def _run_variant(system_cls) -> float:
    cl = quiet_cluster(n_hosts=2, trace=False)
    vm = system_cls(cl)
    app = PvmOpt(vm, OptConfig(data_bytes=DATA_BYTES, iterations=ITERATIONS))
    app.start()
    cl.run(until=3600 * 4)
    assert app.report, f"{system_cls.__name__}: run did not finish"
    return app.report["total_time"]


def run() -> ExperimentResult:
    t_pvm = _run_variant(PvmSystem)
    t_mpvm = _run_variant(MpvmSystem)
    result = ExperimentResult(
        exp_id="table1",
        title="PVM vs MPVM, normal (no migration) execution, 9 MB training set",
        columns=["system", "runtime_s"],
        rows=[
            {"system": "PVM", "runtime_s": t_pvm},
            {"system": "MPVM", "runtime_s": t_mpvm},
        ],
        paper_rows=[
            {"system": "PVM", "runtime_s": PAPER["PVM"]},
            {"system": "MPVM", "runtime_s": PAPER["MPVM"]},
        ],
    )
    overhead = (t_mpvm - t_pvm) / t_pvm
    result.check("mpvm overhead below 2%", abs(overhead) < 0.02)
    result.check("runtime within 25% of the paper's 198 s",
                 0.75 * PAPER["PVM"] < t_pvm < 1.25 * PAPER["PVM"])
    result.notes = f"measured MPVM overhead: {overhead * 100:.3f}%"
    return result


if __name__ == "__main__":
    print(run().format())
