"""Run every experiment and render the paper-vs-measured report.

``python -m repro.experiments.report`` regenerates every table and
figure in §4 of the paper and prints a consolidated comparison — this is
the source of EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from . import figures, table1, table2, table3, table4, table5, table6
from .harness import ExperimentResult

__all__ = ["EXPERIMENTS", "run_all", "render_report"]

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "figure1": figures.figure1,
    "figure2": figures.figure2,
    "figure3": figures.figure3,
    "figure4": figures.figure4,
}


def run_all(only: List[str] | None = None) -> List[ExperimentResult]:
    names = only or list(EXPERIMENTS)
    return [EXPERIMENTS[name]() for name in names]


def render_report(results: List[ExperimentResult]) -> str:
    lines = ["# Reproduction report: paper vs measured", ""]
    n_ok = sum(1 for r in results if r.ok)
    lines.append(f"{n_ok}/{len(results)} experiments pass all shape checks.")
    lines.append("")
    for result in results:
        lines.append(result.format())
        lines.append("")
    return "\n".join(lines)


if __name__ == "__main__":
    import sys

    only = sys.argv[1:] or None
    print(render_report(run_all(only)))
