"""The active half of the fault layer: arming a plan against a cluster.

A :class:`FaultInjector` binds one :class:`~repro.faults.FaultPlan` to
one cluster and pushes its failures in through exactly two seams:

* the **network seam** — it installs itself as ``network.faults`` and
  vets every packet (``check``): traffic to/from a crashed machine
  fails with :class:`HostCrashed`, matching :class:`LinkFault` specs
  drop, delay, or degrade it;
* the **pipeline seam** — migration coordinators consult
  :meth:`at_stage` at every stage boundary, where stage-triggered host
  crashes and skeleton kills fire, and where a destination that died
  since the last boundary is detected.

Both seams are duck-typed so the ``hw`` and ``migration`` layers never
import this package.  All probabilistic choices come from streams
derived from the plan's seed — a chaos run is exactly replayable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Tuple, Union

from ..migration.stages import Stage
from ..sim import RngStreams
from .errors import ControlMessageLost, HostCrashed, LinkPartitioned, SkeletonKilled
from .plan import ControllerCrash, FaultPlan, HostCrash, LinkFault, SkeletonKill

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.cluster import Cluster
    from ..hw.host import Host
    from ..migration.pipeline import MigrationContext

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms a :class:`FaultPlan` against a cluster (see module docs).

    Create it, then :meth:`install` onto the cluster's network (and arm
    timed crashes), and hand it to each migration coordinator
    (``coordinator.injector = injector``) — the ``repro.api.Session``
    facade does all three.
    """

    def __init__(self, cluster: "Cluster", plan: FaultPlan) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.plan = plan
        streams = RngStreams(plan.seed)
        self.rng = streams.get("faults.drops")
        # Per-kind streams for the datagram faults, so adding (say) a
        # MessageDup to a plan never perturbs the draw sequence of its
        # LinkFaults — old plans replay identically.
        self._rng_msgdrop = streams.get("faults.msgdrop")
        self._rng_dup = streams.get("faults.dup")
        self._rng_reorder = streams.get("faults.reorder")
        #: Packets dropped/delayed so far, per windowed spec (max_hits).
        self._hits: Dict[Any, int] = {}
        #: Stage-boundary matches so far, per triggered spec (nth).
        self._seen: Dict[Union[HostCrash, SkeletonKill], int] = {}
        self._fired: set = set()
        self._installed = False

    # -- arming ---------------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Hook the network seam and arm timed host crashes (idempotent)."""
        if self._installed:
            return self
        self._installed = True
        self.cluster.network.faults = self
        for crash in self.plan.host_crashes():
            if crash.at_s is not None:
                self.sim.process(
                    self._timed_crash(crash), name=f"fault:crash:{crash.host}"
                )
        for cc in self.plan.controller_crashes():
            self.sim.process(
                self._timed_controller_crash(cc), name="fault:controller"
            )
        return self

    def _timed_crash(self, crash: HostCrash):
        host = self.cluster.host(crash.host)
        yield self.sim.timeout(crash.at_s)
        self._emit("fault.crash", host.name, f"timed crash at t={crash.at_s:g}s")
        host.fail()
        if crash.recover_after_s is not None:
            yield self.sim.timeout(crash.recover_after_s)
            host.recover()

    def _timed_controller_crash(self, cc: "ControllerCrash"):
        yield self.sim.timeout(cc.at_s)
        # Duck-typed: the control plane registers itself on the cluster
        # when armed; without one the fault has no brain to kill.
        plane = getattr(self.cluster, "control_plane", None)
        if plane is None:
            self._emit(
                "fault.controller", "-",
                f"controller crash at t={cc.at_s:g}s ignored (no control plane armed)",
            )
            return
        self._emit("fault.controller", plane.controller_name() or "-",
                   f"timed controller crash at t={cc.at_s:g}s")
        plane.crash(reason=f"injected at t={cc.at_s:g}s")

    # -- pipeline seam (stage boundaries) -------------------------------------
    def at_stage(
        self, ctx: "MigrationContext", stage: Stage, edge: str
    ) -> Generator[Any, Any, None]:
        """Consulted by the pipeline before/after every stage's work.

        Raises the injected failure into the stage's error path; a
        clean boundary yields nothing and returns.
        """
        unit = ctx.stats.unit
        dst_host = ctx.dst_host()
        for crash in self.plan.host_crashes():
            if crash.stage is None or crash in self._fired:
                continue
            target = dst_host if crash.role == "dst" else ctx.src
            if (
                crash.stage is stage
                and crash.when == edge
                and target is not None
                and target.name == crash.host
            ):
                self._seen[crash] = self._seen.get(crash, 0) + 1
                if self._seen[crash] == crash.nth:
                    self._fired.add(crash)
                    self._emit(
                        "fault.crash", target.name,
                        f"crash at {stage} {edge} of {unit}",
                    )
                    target.fail()
                    if crash.recover_after_s is not None:
                        self.sim.process(
                            self._later_recover(target, crash.recover_after_s),
                            name=f"fault:recover:{target.name}",
                        )
        for kill in self.plan.skeleton_kills():
            if kill in self._fired:
                continue
            if (
                kill.stage is stage
                and kill.when == edge
                and (kill.unit is None or kill.unit == unit)
            ):
                self._seen[kill] = self._seen.get(kill, 0) + 1
                if self._seen[kill] == kill.nth:
                    self._fired.add(kill)
                    where = f"{stage} {edge}"
                    self._emit("fault.kill", unit, f"skeleton killed at {where}")
                    raise SkeletonKilled(unit, where)
        # Liveness check: a machine that died since the last boundary is
        # discovered here, the protocol's next step.
        if dst_host is not None and not dst_host.up:
            raise HostCrashed(dst_host.name, role="dst")
        if not ctx.src.up:
            raise HostCrashed(ctx.src.name, role="src")
        return
        yield  # pragma: no cover

    def _later_recover(self, host: "Host", after_s: float):
        yield self.sim.timeout(after_s)
        host.recover()

    # -- network seam ----------------------------------------------------------
    def check(
        self, src: "Host", dst: "Host", nbytes: float, label: str
    ) -> Union[BaseException, Tuple[float, float]]:
        """Vet one packet; an exception verdict fails the transfer."""
        if not src.up:
            return HostCrashed(src.name, role="src")
        if not dst.up:
            return HostCrashed(dst.name, role="dst")
        now = self.sim.now
        if self.partitioned(src.name, dst.name):
            self._emit(
                "fault.partition", src.name, f"{label!r} -> {dst.name} severed"
            )
            return LinkPartitioned(src.name, dst.name, label)
        delay_s, rate_factor = 0.0, 1.0
        for drop in self.plan.message_drops():
            if not (drop.active_at(now) and drop.matches(src.name, dst.name, label)):
                continue
            if drop.max_hits is not None and self._hits.get(drop, 0) >= drop.max_hits:
                continue
            if drop.drop_prob >= 1.0 or self._rng_msgdrop.random() < drop.drop_prob:
                self._hits[drop] = self._hits.get(drop, 0) + 1
                self._emit("fault.drop", src.name, f"{label!r} -> {dst.name} dropped")
                return ControlMessageLost(label, src.name, dst.name)
        for ro in self.plan.message_reorders():
            if not (ro.active_at(now) and ro.matches(src.name, dst.name, label)):
                continue
            if ro.max_hits is not None and self._hits.get(ro, 0) >= ro.max_hits:
                continue
            if ro.reorder_prob >= 1.0 or self._rng_reorder.random() < ro.reorder_prob:
                self._hits[ro] = self._hits.get(ro, 0) + 1
                self._emit(
                    "fault.reorder", src.name,
                    f"{label!r} -> {dst.name} held {ro.hold_s:g}s",
                )
                delay_s += ro.hold_s
        for fault in self.plan.link_faults():
            if not (fault.active_at(now) and fault.matches(src.name, dst.name, label)):
                continue
            rate_factor *= fault.rate_factor
            if fault.max_hits is not None and self._hits.get(fault, 0) >= fault.max_hits:
                continue
            if fault.drop_prob >= 1.0 or (
                fault.drop_prob > 0.0 and self.rng.random() < fault.drop_prob
            ):
                self._hits[fault] = self._hits.get(fault, 0) + 1
                self._emit("fault.drop", src.name, f"{label!r} -> {dst.name} dropped")
                return ControlMessageLost(label, src.name, dst.name)
            if fault.delay_s > 0.0:
                self._hits[fault] = self._hits.get(fault, 0) + 1
                delay_s += fault.delay_s
        return delay_s, rate_factor

    def partitioned(self, src_name: str, dst_name: str) -> bool:
        """True if an active partition currently severs ``src -> dst``."""
        now = self.sim.now
        return any(
            p.active_at(now) and p.severs(src_name, dst_name)
            for p in self.plan.partitions()
        )

    def duplicates(self, src: "Host", dst: "Host", label: str) -> int:
        """How many *extra* copies of this packet arrive (datagram dup).

        Consulted by the reliability layer after a successful data
        transfer — the plain network cannot deliver twice, so this seam
        lives above it.  Draws come from the plan's ``faults.dup``
        stream; returns 0 when no :class:`MessageDup` matches.
        """
        now = self.sim.now
        extra = 0
        for dup in self.plan.message_dups():
            if not (dup.active_at(now) and dup.matches(src.name, dst.name, label)):
                continue
            if dup.max_hits is not None and self._hits.get(dup, 0) >= dup.max_hits:
                continue
            if dup.dup_prob >= 1.0 or self._rng_dup.random() < dup.dup_prob:
                self._hits[dup] = self._hits.get(dup, 0) + 1
                self._emit(
                    "fault.dup", src.name,
                    f"{label!r} -> {dst.name} duplicated x{dup.extra}",
                )
                extra += dup.extra
        return extra

    # -- bookkeeping ------------------------------------------------------------
    @property
    def fired(self) -> List[str]:
        """Human-readable record of one-shot faults that have fired."""
        return [repr(f) for f in self._fired]

    def _emit(self, kind: str, who: str, detail: str) -> None:
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.emit(self.sim.now, kind, who, detail)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector {self.plan!r}"
            f" fired={len(self._fired)}/{len(self.plan.faults)}>"
        )
