"""Failures the fault layer injects into the migration protocol.

Every injected failure is a :class:`~repro.pvm.errors.PvmMigrationError`
subclass so it flows through the exact error path a real protocol
failure would take: the stage raises, the pipeline runs the adapter's
abort-and-restore hook, and the ``transient``/``reroutable`` class of
the failure decides which recovery avenue (in-place retry vs. alternate
destination) applies.
"""

from __future__ import annotations

from ..pvm.errors import PvmMigrationError

__all__ = [
    "ControlMessageLost",
    "HostCrashed",
    "InjectedFault",
    "LinkPartitioned",
    "SkeletonKilled",
]


class InjectedFault(PvmMigrationError):
    """Base class for failures originating in a :class:`FaultPlan`."""


class HostCrashed(InjectedFault):
    """A machine involved in the migration died.

    Reroutable only when the *destination* died: the unit still sits,
    restored, on its source, and any other compatible host can take it.
    A dead source means the unit itself is gone — nothing to reroute.
    """

    def __init__(self, host: str, role: str = "dst") -> None:
        super().__init__(f"{role} host {host} is down")
        self.host = host
        self.role = role
        self.reroutable = role == "dst"


class SkeletonKilled(InjectedFault):
    """The helper process receiving migrated state was killed.

    Transient: the mechanism simply starts a fresh skeleton on the next
    protocol attempt (MPVM §2.1 spawns one per migration).
    """

    transient = True

    def __init__(self, unit: str, where: str) -> None:
        super().__init__(f"skeleton for {unit} killed at {where}")
        self.unit = unit
        self.where = where


class ControlMessageLost(InjectedFault):
    """A protocol packet was dropped (or its link is partitioned).

    Transient: protocol packets are idempotent in our model, so the
    retry re-sends them.
    """

    transient = True

    def __init__(self, label: str, src: str, dst: str) -> None:
        super().__init__(f"packet {label!r} lost on {src} -> {dst}")
        self.label = label
        self.src = src
        self.dst = dst


class LinkPartitioned(InjectedFault):
    """The packet tried to cross an active network partition.

    Transient from the protocol's point of view — the partition heals
    eventually and a retry then succeeds — but unlike a plain drop the
    *whole cut* is down, so retries inside the partition window all
    fail.  The reliability layer keeps retransmitting with backoff; the
    recovery layer's grace window keeps the victim from being declared
    dead in the meantime.
    """

    transient = True

    def __init__(self, src: str, dst: str, label: str) -> None:
        super().__init__(f"partition severs {src} -> {dst} ({label!r})")
        self.src = src
        self.dst = dst
        self.label = label
