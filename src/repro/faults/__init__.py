"""Deterministic fault injection for the migration core.

The paper's worknet premise — machines come and go as their owners
reclaim them — means a migration mechanism must survive the worknet
misbehaving *during* a migration.  This package provides the adversary:
a seeded, declarative :class:`FaultPlan` (crash hosts, partition or
degrade links, drop/delay protocol packets, kill skeleton processes at
named pipeline points) and the :class:`FaultInjector` that arms it
against a cluster through two duck-typed seams (``network.faults`` and
the pipeline's stage-boundary hook).

Everything is deterministic under ``(cluster seed, plan seed)``: chaos
runs replay exactly, so tests can assert on them.

Quick use through the session facade::

    from repro.api import Session
    from repro.faults import FaultPlan, HostCrash

    s = Session(
        mechanism="mpvm",
        faults=FaultPlan(faults=(HostCrash(host="hp720-1", stage="transfer"),)),
    )
"""

from .errors import (
    ControlMessageLost,
    HostCrashed,
    InjectedFault,
    LinkPartitioned,
    SkeletonKilled,
)
from .injector import FaultInjector
from .plan import (
    ControllerCrash,
    FaultPlan,
    HostCrash,
    LinkFault,
    MessageDrop,
    MessageDup,
    MessageReorder,
    NetworkPartition,
    SkeletonKill,
)

__all__ = [
    "ControlMessageLost",
    "ControllerCrash",
    "FaultInjector",
    "FaultPlan",
    "HostCrash",
    "HostCrashed",
    "InjectedFault",
    "LinkFault",
    "LinkPartitioned",
    "MessageDrop",
    "MessageDup",
    "MessageReorder",
    "NetworkPartition",
    "SkeletonKill",
    "SkeletonKilled",
]
