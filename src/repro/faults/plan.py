"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a frozen description of *what should go wrong*:
machine crashes (timed, or triggered when a migration reaches a named
pipeline stage), link partitions/degradations, dropped or delayed
protocol packets, and killed skeleton processes.  Plans carry their own
seed; every probabilistic decision (packet drops) is drawn from streams
derived from it, so a run under a given ``(cluster seed, FaultPlan)``
pair replays *identically* — crash timing, retry backoff, reroute
choices and all.  That determinism is what makes chaos runs assertable
in tests.

Plans are pure data.  The :class:`~repro.faults.FaultInjector` is the
active object that arms them against a cluster.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..migration.stages import Stage

__all__ = [
    "ControllerCrash",
    "FaultPlan",
    "HostCrash",
    "KNOWN_FAULT_KINDS",
    "LinkFault",
    "MessageDrop",
    "MessageDup",
    "MessageReorder",
    "NetworkPartition",
    "SkeletonKill",
]


#: Kinds FaultPlan.random / FaultPlan.burst can draw (CLI --kinds values).
KNOWN_FAULT_KINDS = ("crash", "drop", "dup", "reorder", "partition", "controller")


def _as_stage(stage: Union[Stage, str, None]) -> Optional[Stage]:
    if stage is None or isinstance(stage, Stage):
        return stage
    return Stage[stage.upper()]


@dataclass(frozen=True)
class HostCrash:
    """Crash one machine, at a wall-clock instant or a protocol point.

    Exactly one trigger must be given: ``at_s`` (simulated seconds) or
    ``stage`` (fires when the ``nth`` migration involving ``host`` in
    ``role`` reaches that stage — ``when`` picks the stage's enter or
    exit edge, i.e. before or after the stage's work).  An optional
    ``recover_after_s`` brings the machine back up (its processes are
    not restored; recovery only re-admits network traffic).
    """

    host: str
    at_s: Optional[float] = None
    stage: Union[Stage, str, None] = None
    when: str = "enter"  #: "enter" | "exit"
    role: str = "dst"  #: "dst" | "src" — which end of the migration
    nth: int = 1
    recover_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.at_s is None) == (self.stage is None):
            raise ValueError("HostCrash needs exactly one of at_s= or stage=")
        if self.when not in ("enter", "exit"):
            raise ValueError(f"when must be 'enter' or 'exit', not {self.when!r}")
        if self.role not in ("dst", "src"):
            raise ValueError(f"role must be 'dst' or 'src', not {self.role!r}")
        object.__setattr__(self, "stage", _as_stage(self.stage))


@dataclass(frozen=True)
class SkeletonKill:
    """Kill the state-receiving helper process at a named pipeline point.

    Fires on the ``nth`` migration reaching ``stage`` (``when`` edge),
    optionally only for a named unit.  The failure is transient — the
    next protocol attempt spawns a fresh skeleton.
    """

    stage: Union[Stage, str] = Stage.TRANSFER
    when: str = "exit"  #: default: the skeleton dies holding the state
    unit: Optional[str] = None
    nth: int = 1

    def __post_init__(self) -> None:
        if self.when not in ("enter", "exit"):
            raise ValueError(f"when must be 'enter' or 'exit', not {self.when!r}")
        object.__setattr__(self, "stage", _as_stage(self.stage))


@dataclass(frozen=True)
class LinkFault:
    """Disturb traffic on the wire between two machines.

    ``src``/``dst`` of ``None`` match any endpoint; ``label`` (substring
    of the transfer's label) of ``None`` matches any packet — name a
    protocol label to target control messages specifically.  Active in
    the simulated-time window ``[from_s, until_s)``:

    * ``drop_prob=1.0`` partitions the link (every matching packet dies),
    * ``0 < drop_prob < 1`` drops packets via the plan's seeded stream,
    * ``delay_s`` adds latency to every matching packet,
    * ``rate_factor < 1`` degrades the link's effective bandwidth.

    ``max_hits`` bounds how many packets the fault may drop or delay
    (bandwidth degradation is not counted — it is a link property, not
    a per-packet event).
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    label: Optional[str] = None
    drop_prob: float = 0.0
    delay_s: float = 0.0
    rate_factor: float = 1.0
    from_s: float = 0.0
    until_s: Optional[float] = None
    max_hits: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError("drop_prob must be in [0, 1]")
        if self.rate_factor <= 0.0:
            raise ValueError("rate_factor must be positive")

    def active_at(self, now: float) -> bool:
        return now >= self.from_s and (self.until_s is None or now < self.until_s)

    def matches(self, src: str, dst: str, label: str) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.label is None or self.label in label)
        )


class _Windowed:
    """Mixin: a fault active in the simulated-time window [from_s, until_s)."""

    from_s: float
    until_s: Optional[float]

    def active_at(self, now: float) -> bool:
        return now >= self.from_s and (self.until_s is None or now < self.until_s)


@dataclass(frozen=True)
class MessageDrop(_Windowed):
    """Lose matching packets on the wire (datagram loss, no notice).

    Unlike :class:`LinkFault` (which models a *degraded link*), this is
    the per-packet loss process the reliability layer is built to hide:
    name a protocol label (``rel-data``, ``rel-ack``, ...) to target one
    packet class.  ``drop_prob`` draws from the plan's seeded stream;
    ``max_hits`` bounds the total packets lost.
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    label: Optional[str] = None
    drop_prob: float = 1.0
    from_s: float = 0.0
    until_s: Optional[float] = None
    max_hits: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.drop_prob <= 1.0:
            raise ValueError("drop_prob must be in (0, 1]")

    def matches(self, src: str, dst: str, label: str) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.label is None or self.label in label)
        )


@dataclass(frozen=True)
class MessageDup(_Windowed):
    """Deliver matching packets more than once (datagram duplication).

    Consulted by the reliability layer through the injector's
    ``duplicates`` seam: a duplicated data packet arrives ``extra``
    additional times, exercising the receiver's duplicate suppression.
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    label: Optional[str] = None
    dup_prob: float = 1.0
    extra: int = 1
    from_s: float = 0.0
    until_s: Optional[float] = None
    max_hits: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.dup_prob <= 1.0:
            raise ValueError("dup_prob must be in (0, 1]")
        if self.extra < 1:
            raise ValueError("extra must be >= 1")

    def matches(self, src: str, dst: str, label: str) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.label is None or self.label in label)
        )


@dataclass(frozen=True)
class MessageReorder(_Windowed):
    """Delay a random subset of matching packets so they arrive late.

    Under the reliability layer's windowed (pipelined) sends, a held
    packet overtakes its successors and arrives out of order — which the
    receiver's FIFO reorder buffer must absorb.  ``hold_s`` is the extra
    latency added to a selected packet (drawn packets only; selection
    uses the plan's seeded stream).
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    label: Optional[str] = None
    reorder_prob: float = 0.5
    hold_s: float = 0.02
    from_s: float = 0.0
    until_s: Optional[float] = None
    max_hits: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.reorder_prob <= 1.0:
            raise ValueError("reorder_prob must be in (0, 1]")
        if self.hold_s <= 0.0:
            raise ValueError("hold_s must be positive")

    def matches(self, src: str, dst: str, label: str) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.label is None or self.label in label)
        )


@dataclass(frozen=True)
class NetworkPartition(_Windowed):
    """Split ``hosts`` away from the rest of the worknet, then heal.

    While active (``[from_s, until_s)``), every packet crossing the cut
    — in either direction — is lost; hosts inside the island still talk
    to each other, as does the majority side.  ``until_s`` is the heal
    instant (``None`` = the partition never heals).  Unlike a crash, the
    isolated machines keep running: distinguishing the two is the whole
    split-brain problem the recovery layer's grace window addresses.
    """

    hosts: Tuple[str, ...] = ()
    from_s: float = 0.0
    until_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.hosts:
            raise ValueError("NetworkPartition needs at least one isolated host")
        object.__setattr__(self, "hosts", tuple(self.hosts))

    def severs(self, src: str, dst: str) -> bool:
        """True if the cut lies between ``src`` and ``dst``."""
        return (src in self.hosts) != (dst in self.hosts)


@dataclass(frozen=True)
class ControllerCrash:
    """Crash the active *controller process* (the control plane's brain).

    Unlike :class:`HostCrash` this kills only the scheduler/recovery
    brain, not the machine it runs on: the data plane keeps computing,
    heartbeats go unanswered, and — when a
    :class:`~repro.control.ControlPlane` is armed — the deterministic
    standby succession elects a new controller under a bumped epoch.
    Against a session with no control plane the fault is a traced no-op
    (there is no brain to kill; the ambient singleton of earlier
    releases is immortal by construction).
    """

    at_s: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.at_s, (int, float)):
            raise TypeError(f"at_s must be a number, not {self.at_s!r}")


FaultSpec = Union[
    HostCrash, SkeletonKill, LinkFault,
    MessageDrop, MessageDup, MessageReorder, NetworkPartition,
    ControllerCrash,
]

_SPEC_KINDS = {
    "HostCrash": HostCrash,
    "SkeletonKill": SkeletonKill,
    "LinkFault": LinkFault,
    "MessageDrop": MessageDrop,
    "MessageDup": MessageDup,
    "MessageReorder": MessageReorder,
    "NetworkPartition": NetworkPartition,
    "ControllerCrash": ControllerCrash,
}


def _spec_to_json(spec: FaultSpec) -> Dict[str, Any]:
    d: Dict[str, Any] = {"kind": type(spec).__name__}
    for f in fields(spec):
        v = getattr(spec, f.name)
        if isinstance(v, Stage):
            v = v.name
        elif isinstance(v, tuple):
            v = list(v)
        d[f.name] = v
    return d


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable collection of fault specifications."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        seen: set = set()
        for i, spec in enumerate(self.faults):
            if not isinstance(spec, tuple(_SPEC_KINDS.values())):
                raise TypeError(f"not a fault spec: {spec!r}")
            what = f"fault #{i} ({type(spec).__name__})"
            at = getattr(spec, "at_s", None)
            if at is not None:
                if not math.isfinite(at):
                    raise ValueError(f"{what}: at_s={at!r} is not a finite timestamp")
                if at < 0.0:
                    raise ValueError(f"{what}: at_s={at!r} is out of range (must be >= 0)")
            for fname in ("from_s", "until_s", "recover_after_s"):
                v = getattr(spec, fname, None)
                if v is not None and not math.isfinite(v):
                    raise ValueError(f"{what}: {fname}={v!r} is not a finite timestamp")
            if spec in seen:
                raise ValueError(f"duplicate fault entry at #{i}: {spec!r}")
            seen.add(spec)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def host_crashes(self) -> Tuple[HostCrash, ...]:
        return tuple(f for f in self.faults if isinstance(f, HostCrash))

    def controller_crashes(self) -> Tuple[ControllerCrash, ...]:
        return tuple(f for f in self.faults if isinstance(f, ControllerCrash))

    def skeleton_kills(self) -> Tuple[SkeletonKill, ...]:
        return tuple(f for f in self.faults if isinstance(f, SkeletonKill))

    def link_faults(self) -> Tuple[LinkFault, ...]:
        return tuple(f for f in self.faults if isinstance(f, LinkFault))

    def message_drops(self) -> Tuple[MessageDrop, ...]:
        return tuple(f for f in self.faults if isinstance(f, MessageDrop))

    def message_dups(self) -> Tuple[MessageDup, ...]:
        return tuple(f for f in self.faults if isinstance(f, MessageDup))

    def message_reorders(self) -> Tuple[MessageReorder, ...]:
        return tuple(f for f in self.faults if isinstance(f, MessageReorder))

    def partitions(self) -> Tuple[NetworkPartition, ...]:
        return tuple(f for f in self.faults if isinstance(f, NetworkPartition))

    def __repr__(self) -> str:
        kinds = ", ".join(type(f).__name__ for f in self.faults) or "none"
        return f"<FaultPlan seed={self.seed} faults=[{kinds}]>"

    # -- serialisation ---------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """Plain-dict form (Stage values by name); round-trips exactly
        through :meth:`from_json`, so plans can be committed alongside
        the benchmark artefacts they produced."""
        return {
            "seed": self.seed,
            "faults": [_spec_to_json(f) for f in self.faults],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FaultPlan":
        specs: List[FaultSpec] = []
        for entry in data.get("faults", []):
            entry = dict(entry)
            kind = entry.pop("kind")
            try:
                spec_cls = _SPEC_KINDS[kind]
            except KeyError:
                raise ValueError(f"unknown fault kind {kind!r}") from None
            specs.append(spec_cls(**entry))
        return cls(faults=tuple(specs), seed=int(data.get("seed", 0)))

    @classmethod
    def random(
        cls,
        seed: int,
        n: int = 3,
        horizon: float = 60.0,
        *,
        hosts: Optional[Sequence[str]] = None,
        kinds: Sequence[str] = ("crash",),
    ) -> "FaultPlan":
        """A seeded random schedule of ``n`` faults of the given ``kinds``.

        The default (``kinds=("crash",)``) is a schedule of ``n`` timed
        host crashes: victims drawn without replacement from ``hosts``,
        crash times uniform inside ``(0.05*horizon, 0.95*horizon)``,
        sorted ascending — the soak harness and the faults demo share
        this so their chaos schedules agree for a given seed, and that
        schedule is unchanged from earlier releases.

        Other kinds (drawn round-robin when several are named, ``n``
        total): ``"drop"``/``"dup"``/``"reorder"`` are per-packet
        datagram faults on the reliability layer's ``rel-data`` /
        ``rel-ack`` labels, active in a random sub-window of the
        horizon; ``"partition"`` isolates one or two named hosts for
        10–30 % of the horizon and then heals.
        """
        if hosts is None:
            raise ValueError("FaultPlan.random needs hosts= (crash candidates)")
        kinds = tuple(kinds)
        for k in kinds:
            if k not in KNOWN_FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {k!r} (choose from {KNOWN_FAULT_KINDS})"
                )
        rng = random.Random(seed)
        if kinds == ("crash",):
            # Legacy schedule — byte-for-byte identical draws.
            if n > len(hosts):
                raise ValueError(
                    f"cannot pick {n} distinct victims from {len(hosts)} hosts"
                )
            victims = rng.sample(list(hosts), n)
            times = sorted(rng.uniform(0.05 * horizon, 0.95 * horizon) for _ in range(n))
            crashes = tuple(
                HostCrash(host=h, at_s=t) for h, t in zip(victims, times)
            )
            return cls(faults=crashes, seed=seed)

        specs: List[FaultSpec] = []
        crash_pool = list(hosts)
        controller_draws = 0
        for i in range(n):
            kind = kinds[i % len(kinds)]
            t0 = rng.uniform(0.05 * horizon, 0.7 * horizon)
            t1 = min(t0 + rng.uniform(0.1 * horizon, 0.3 * horizon), 0.95 * horizon)
            if kind == "crash":
                if not crash_pool:
                    raise ValueError("ran out of distinct crash victims")
                specs.append(
                    HostCrash(host=crash_pool.pop(rng.randrange(len(crash_pool))), at_s=t0)
                )
            elif kind == "drop":
                specs.append(MessageDrop(
                    label=rng.choice(["rel-data", "rel-ack"]),
                    drop_prob=rng.uniform(0.05, 0.3),
                    from_s=t0, until_s=t1,
                ))
            elif kind == "dup":
                specs.append(MessageDup(
                    label="rel-data",
                    dup_prob=rng.uniform(0.05, 0.3),
                    extra=rng.randint(1, 2),
                    from_s=t0, until_s=t1,
                ))
            elif kind == "reorder":
                specs.append(MessageReorder(
                    label="rel-data",
                    reorder_prob=rng.uniform(0.1, 0.4),
                    hold_s=rng.uniform(0.005, 0.05),
                    from_s=t0, until_s=t1,
                ))
            elif kind == "controller":
                controller_draws += 1
                if controller_draws > len(hosts):
                    # Each nested controller crash consumes one standby;
                    # a plan deeper than the succession list can never
                    # be absorbed (ControlConfig.standbys defaults to
                    # every host).  Fail at build time, not mid-soak.
                    raise ValueError(
                        f"fault #{i} (ControllerCrash): {controller_draws} "
                        f"controller crashes exceed the standby depth "
                        f"({len(hosts)} candidate hosts)"
                    )
                specs.append(ControllerCrash(at_s=t0))
            else:  # partition
                island = tuple(rng.sample(list(hosts), rng.randint(1, min(2, len(hosts)))))
                specs.append(NetworkPartition(hosts=island, from_s=t0, until_s=t1))
        specs.sort(key=lambda s: getattr(s, "at_s", None) or getattr(s, "from_s", 0.0))
        return cls(faults=tuple(specs), seed=seed)

    @classmethod
    def burst(
        cls,
        seed: int,
        n: int = 3,
        horizon: float = 60.0,
        *,
        hosts: Sequence[str],
        center_frac: float = 0.5,
        width_frac: float = 0.08,
        kinds: Sequence[str] = ("crash",),
    ) -> "FaultPlan":
        """A seeded *fault burst*: ``n`` faults clustered in one window.

        Where :meth:`random` spreads faults uniformly over the horizon,
        a burst models correlated failure (a rack losing power, a switch
        rebooting): every fault instant is drawn from a Gaussian centred
        at ``center_frac * horizon`` with standard deviation
        ``width_frac * horizon``, clipped to the same (5 %, 95 %) band
        :meth:`random` uses, and sorted ascending.  ``kinds`` follows
        :meth:`random`'s vocabulary (round-robin when several are
        named); windowed kinds get a short window (one sigma wide)
        starting at their drawn instant, so the whole burst is over in a
        few sigma — the "fault burst scenario" of the adaptive
        load-balancing migration literature.
        """
        if not hosts:
            raise ValueError("FaultPlan.burst needs hosts= (fault candidates)")
        if not 0.0 < center_frac < 1.0:
            raise ValueError("center_frac must be in (0, 1)")
        if width_frac <= 0.0:
            raise ValueError("width_frac must be positive")
        kinds = tuple(kinds)
        for k in kinds:
            if k not in KNOWN_FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {k!r} (choose from {KNOWN_FAULT_KINDS})"
                )
        rng = random.Random(seed)
        center = center_frac * horizon
        sigma = width_frac * horizon
        lo, hi = 0.05 * horizon, 0.95 * horizon

        def instant() -> float:
            return min(max(rng.gauss(center, sigma), lo), hi)

        specs: List[FaultSpec] = []
        crash_pool = list(hosts)
        controller_draws = 0
        for i in range(n):
            kind = kinds[i % len(kinds)]
            t0 = instant()
            t1 = min(t0 + sigma, hi)
            if kind == "crash":
                if not crash_pool:
                    raise ValueError("ran out of distinct crash victims")
                specs.append(
                    HostCrash(
                        host=crash_pool.pop(rng.randrange(len(crash_pool))), at_s=t0
                    )
                )
            elif kind == "drop":
                specs.append(MessageDrop(
                    label=rng.choice(["rel-data", "rel-ack"]),
                    drop_prob=rng.uniform(0.1, 0.4),
                    from_s=t0, until_s=t1,
                ))
            elif kind == "dup":
                specs.append(MessageDup(
                    label="rel-data",
                    dup_prob=rng.uniform(0.1, 0.4),
                    extra=rng.randint(1, 2),
                    from_s=t0, until_s=t1,
                ))
            elif kind == "reorder":
                specs.append(MessageReorder(
                    label="rel-data",
                    reorder_prob=rng.uniform(0.1, 0.4),
                    hold_s=rng.uniform(0.005, 0.05),
                    from_s=t0, until_s=t1,
                ))
            elif kind == "controller":
                controller_draws += 1
                if controller_draws > len(hosts):
                    raise ValueError(
                        f"fault #{i} (ControllerCrash): {controller_draws} "
                        f"controller crashes exceed the standby depth "
                        f"({len(hosts)} candidate hosts)"
                    )
                specs.append(ControllerCrash(at_s=t0))
            else:  # partition
                island = tuple(
                    rng.sample(list(hosts), rng.randint(1, min(2, len(hosts))))
                )
                specs.append(NetworkPartition(hosts=island, from_s=t0, until_s=t1))
        specs.sort(key=lambda s: getattr(s, "at_s", None) or getattr(s, "from_s", 0.0))
        return cls(faults=tuple(specs), seed=seed)
