"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a frozen description of *what should go wrong*:
machine crashes (timed, or triggered when a migration reaches a named
pipeline stage), link partitions/degradations, dropped or delayed
protocol packets, and killed skeleton processes.  Plans carry their own
seed; every probabilistic decision (packet drops) is drawn from streams
derived from it, so a run under a given ``(cluster seed, FaultPlan)``
pair replays *identically* — crash timing, retry backoff, reroute
choices and all.  That determinism is what makes chaos runs assertable
in tests.

Plans are pure data.  The :class:`~repro.faults.FaultInjector` is the
active object that arms them against a cluster.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..migration.stages import Stage

__all__ = ["FaultPlan", "HostCrash", "LinkFault", "SkeletonKill"]


def _as_stage(stage: Union[Stage, str, None]) -> Optional[Stage]:
    if stage is None or isinstance(stage, Stage):
        return stage
    return Stage[stage.upper()]


@dataclass(frozen=True)
class HostCrash:
    """Crash one machine, at a wall-clock instant or a protocol point.

    Exactly one trigger must be given: ``at_s`` (simulated seconds) or
    ``stage`` (fires when the ``nth`` migration involving ``host`` in
    ``role`` reaches that stage — ``when`` picks the stage's enter or
    exit edge, i.e. before or after the stage's work).  An optional
    ``recover_after_s`` brings the machine back up (its processes are
    not restored; recovery only re-admits network traffic).
    """

    host: str
    at_s: Optional[float] = None
    stage: Union[Stage, str, None] = None
    when: str = "enter"  #: "enter" | "exit"
    role: str = "dst"  #: "dst" | "src" — which end of the migration
    nth: int = 1
    recover_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.at_s is None) == (self.stage is None):
            raise ValueError("HostCrash needs exactly one of at_s= or stage=")
        if self.when not in ("enter", "exit"):
            raise ValueError(f"when must be 'enter' or 'exit', not {self.when!r}")
        if self.role not in ("dst", "src"):
            raise ValueError(f"role must be 'dst' or 'src', not {self.role!r}")
        object.__setattr__(self, "stage", _as_stage(self.stage))


@dataclass(frozen=True)
class SkeletonKill:
    """Kill the state-receiving helper process at a named pipeline point.

    Fires on the ``nth`` migration reaching ``stage`` (``when`` edge),
    optionally only for a named unit.  The failure is transient — the
    next protocol attempt spawns a fresh skeleton.
    """

    stage: Union[Stage, str] = Stage.TRANSFER
    when: str = "exit"  #: default: the skeleton dies holding the state
    unit: Optional[str] = None
    nth: int = 1

    def __post_init__(self) -> None:
        if self.when not in ("enter", "exit"):
            raise ValueError(f"when must be 'enter' or 'exit', not {self.when!r}")
        object.__setattr__(self, "stage", _as_stage(self.stage))


@dataclass(frozen=True)
class LinkFault:
    """Disturb traffic on the wire between two machines.

    ``src``/``dst`` of ``None`` match any endpoint; ``label`` (substring
    of the transfer's label) of ``None`` matches any packet — name a
    protocol label to target control messages specifically.  Active in
    the simulated-time window ``[from_s, until_s)``:

    * ``drop_prob=1.0`` partitions the link (every matching packet dies),
    * ``0 < drop_prob < 1`` drops packets via the plan's seeded stream,
    * ``delay_s`` adds latency to every matching packet,
    * ``rate_factor < 1`` degrades the link's effective bandwidth.

    ``max_hits`` bounds how many packets the fault may drop or delay
    (bandwidth degradation is not counted — it is a link property, not
    a per-packet event).
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    label: Optional[str] = None
    drop_prob: float = 0.0
    delay_s: float = 0.0
    rate_factor: float = 1.0
    from_s: float = 0.0
    until_s: Optional[float] = None
    max_hits: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError("drop_prob must be in [0, 1]")
        if self.rate_factor <= 0.0:
            raise ValueError("rate_factor must be positive")

    def active_at(self, now: float) -> bool:
        return now >= self.from_s and (self.until_s is None or now < self.until_s)

    def matches(self, src: str, dst: str, label: str) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.label is None or self.label in label)
        )


FaultSpec = Union[HostCrash, SkeletonKill, LinkFault]

_SPEC_KINDS = {"HostCrash": HostCrash, "SkeletonKill": SkeletonKill, "LinkFault": LinkFault}


def _spec_to_json(spec: FaultSpec) -> Dict[str, Any]:
    d: Dict[str, Any] = {"kind": type(spec).__name__}
    for f in fields(spec):
        v = getattr(spec, f.name)
        if isinstance(v, Stage):
            v = v.name
        d[f.name] = v
    return d


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable collection of fault specifications."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, (HostCrash, SkeletonKill, LinkFault)):
                raise TypeError(f"not a fault spec: {spec!r}")

    def __bool__(self) -> bool:
        return bool(self.faults)

    def host_crashes(self) -> Tuple[HostCrash, ...]:
        return tuple(f for f in self.faults if isinstance(f, HostCrash))

    def skeleton_kills(self) -> Tuple[SkeletonKill, ...]:
        return tuple(f for f in self.faults if isinstance(f, SkeletonKill))

    def link_faults(self) -> Tuple[LinkFault, ...]:
        return tuple(f for f in self.faults if isinstance(f, LinkFault))

    def __repr__(self) -> str:
        kinds = ", ".join(type(f).__name__ for f in self.faults) or "none"
        return f"<FaultPlan seed={self.seed} faults=[{kinds}]>"

    # -- serialisation ---------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """Plain-dict form (Stage values by name); round-trips exactly
        through :meth:`from_json`, so plans can be committed alongside
        the benchmark artefacts they produced."""
        return {
            "seed": self.seed,
            "faults": [_spec_to_json(f) for f in self.faults],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FaultPlan":
        specs: List[FaultSpec] = []
        for entry in data.get("faults", []):
            entry = dict(entry)
            kind = entry.pop("kind")
            try:
                spec_cls = _SPEC_KINDS[kind]
            except KeyError:
                raise ValueError(f"unknown fault kind {kind!r}") from None
            specs.append(spec_cls(**entry))
        return cls(faults=tuple(specs), seed=int(data.get("seed", 0)))

    @classmethod
    def random(
        cls,
        seed: int,
        n: int = 3,
        horizon: float = 60.0,
        *,
        hosts: Optional[Sequence[str]] = None,
    ) -> "FaultPlan":
        """A seeded schedule of ``n`` timed host crashes.

        Victims are drawn without replacement from ``hosts`` and crash
        times uniformly inside ``(0.05*horizon, 0.95*horizon)``, sorted
        ascending — the soak harness and the faults demo share this so
        their chaos schedules agree for a given seed.
        """
        if hosts is None:
            raise ValueError("FaultPlan.random needs hosts= (crash candidates)")
        if n > len(hosts):
            raise ValueError(f"cannot pick {n} distinct victims from {len(hosts)} hosts")
        rng = random.Random(seed)
        victims = rng.sample(list(hosts), n)
        times = sorted(rng.uniform(0.05 * horizon, 0.95 * horizon) for _ in range(n))
        crashes = tuple(
            HostCrash(host=h, at_s=t) for h, t in zip(victims, times)
        )
        return cls(faults=crashes, seed=seed)
