"""The chaos demo behind ``python -m repro faults``.

One seeded :class:`FaultPlan` — the chosen destination host dies the
instant state transfer begins, and the first protocol control packet on
the wire is dropped — thrown at all three migration mechanisms:

* **MPVM** migrates a whole process; the pipeline retries past the
  dropped packet and the GS reroutes the image to a healthy host.
* **UPVM** migrates one ULP; same recovery, finer granularity.
* **ADM**  loses a whole worker mid-iteration; the consensus writes its
  unreported exemplars off and the training run completes degraded
  instead of hanging.

Everything is derived from ``--seed``: run it twice with the same seed
and the outcome — every retry, every reroute, every trace line — is
identical.  That replayability is the point: a chaos run you cannot
replay is a flake, not evidence.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..api import Session
from ..pvm.errors import PvmError
from .plan import (
    ControllerCrash,
    FaultPlan,
    HostCrash,
    LinkFault,
    MessageDrop,
    NetworkPartition,
)

__all__ = [
    "chaos_plan",
    "controller_plan",
    "partition_plan",
    "random_plan",
    "run_controller",
    "run_demo",
    "run_partition",
    "run_split_control",
    "split_control_plan",
    "main",
    "main_controller",
    "main_partition",
    "main_split_control",
]


def chaos_plan(seed: int) -> FaultPlan:
    """Destination dies as transfer starts; first control packet drops."""
    return FaultPlan(
        faults=(
            HostCrash(host="hp720-1", stage="transfer", when="enter"),
            LinkFault(label="ctl", drop_prob=1.0, max_hits=1),
        ),
        seed=seed,
    )


def partition_plan(seed: int) -> FaultPlan:
    """A lossy wire plus a transient partition cutting off hp720-1.

    The drop rate chews on the reliable channel's data packets the whole
    run; the partition severs the host entirely for ten seconds in the
    middle.  Survivable by design: the partition is far shorter than the
    channel's retransmit budget, so nothing is ever declared lost.
    """
    return FaultPlan(
        faults=(
            MessageDrop(src="hp720-0", dst="hp720-1", label="rel-data",
                        drop_prob=0.25),
            NetworkPartition(hosts=("hp720-1",), from_s=6.0, until_s=16.0),
        ),
        seed=seed,
    )


def random_plan(seed: int, kinds: tuple = ("crash",)) -> FaultPlan:
    """A seeded random fault schedule over the demo's worker hosts.

    Shares :meth:`FaultPlan.random` with the soak harness, so
    ``python -m repro faults --random --seed N`` and a soak run at the
    same seed draw from the same generator.  ``kinds`` widens the draw
    beyond crashes (``python -m repro faults --random --kinds
    drop,dup,reorder,partition``); message kinds target the reliable
    channel's packets, so the demo legs arm reliability when present.
    """
    n = 1 if kinds == ("crash",) else max(2, len(kinds))
    return FaultPlan.random(
        seed, n=n, horizon=20.0, hosts=["hp720-0", "hp720-1"], kinds=kinds
    )


def _wants_reliability(plan: Optional[FaultPlan]) -> bool:
    """Message-level faults only bite the reliable channel's labels."""
    if plan is None:
        return False
    labels = {getattr(f, "label", None) for f in plan.faults}
    partitioned = any(isinstance(f, NetworkPartition) for f in plan.faults)
    return partitioned or bool({"rel-data", "rel-ack"} & labels)


def _summary(s: Session, extra: Dict[str, Any]) -> Dict[str, Any]:
    out = {
        "outcomes": s.outcomes(),
        "attempts": sum(m.attempts for m in s.migrations + s.abandoned),
        "faults_fired": sorted(s.injector.fired) if s.injector else [],
    }
    out.update(extra)
    return out


def run_mpvm(
    seed: int,
    plan: Optional[FaultPlan] = None,
    *,
    recovery: bool = False,
    reliability: bool = False,
) -> Dict[str, Any]:
    """A process migration whose destination dies mid-transfer."""
    s = Session(
        mechanism="mpvm", n_hosts=3, seed=seed,
        faults=plan if plan is not None else chaos_plan(seed),
        recovery=recovery,
        reliability=reliability,
    )
    vm = s.vm
    extra: Dict[str, Any] = {}

    def cruncher(ctx):
        yield from ctx.compute(25e6 * 20)
        extra["finished_on"] = ctx.host.name

    def boss(ctx):
        (tid,) = yield from ctx.spawn("cruncher", count=1, where=[0])
        yield ctx.sim.timeout(2.0)
        done = s.migrate(vm.task(tid), s.host(1))
        try:
            yield done
        except PvmError as exc:
            extra["error"] = str(exc)

    vm.register_program("cruncher", cruncher)
    vm.register_program("boss", boss)
    vm.start_master("boss", host=2)
    s.run(until=600)
    return _summary(s, extra)


def run_upvm(
    seed: int,
    plan: Optional[FaultPlan] = None,
    *,
    recovery: bool = False,
    reliability: bool = False,
) -> Dict[str, Any]:
    """A single-ULP migration whose destination dies mid-transfer."""
    s = Session(
        mechanism="upvm", n_hosts=3, seed=seed,
        faults=plan if plan is not None else chaos_plan(seed),
        recovery=recovery,
        reliability=reliability,
    )
    extra: Dict[str, Any] = {}
    finished: Dict[int, str] = {}

    def worker(ctx):
        yield from ctx.compute(25e6 * 20)
        finished[ctx.me] = ctx.host.name

    app = s.vm.start_app("grind", worker, n_ulps=2, placement={0: 0, 1: 2})

    def chaos():
        yield s.sim.timeout(2.0)
        done = s.migrate(app.ulps[0], s.host(1))
        try:
            yield done
        except PvmError as exc:
            extra["error"] = str(exc)

    s.sim.process(chaos())
    s.run(until=600)
    extra["finished_on"] = finished.get(0)
    return _summary(s, extra)


def run_adm(
    seed: int,
    plan: Optional[FaultPlan] = None,
    *,
    recovery: bool = False,
    reliability: bool = False,
) -> Dict[str, Any]:
    """An ADM training run that loses a whole worker mid-iteration."""
    from ..apps.opt import AdmOpt, MB_DEC, OptConfig

    s = Session(
        mechanism="adm", n_hosts=3, seed=seed,
        faults=plan if plan is not None else chaos_plan(seed),
        recovery=recovery,
        reliability=reliability,
    )
    cfg = OptConfig(data_bytes=1 * MB_DEC, iterations=8)
    app = AdmOpt(s.vm, cfg, master_host=2, slave_hosts=[0, 1])
    app.start()
    s.adopt(app)

    def chaos():
        # Wait for the run to be underway, then pull worker 1's plug.
        while len(app.slave_tids) < cfg.n_slaves:
            yield s.sim.timeout(0.2)
        yield s.sim.timeout(5.0)
        s.vm.kill_task(app.slave_tids[1])

    s.sim.process(chaos())
    s.run(until=3600)
    return _summary(
        s,
        {
            "completed": "total_time" in app.report,
            "total_time": app.report.get("total_time"),
            "lost_workers": sorted(app.lost),
            "fault_tolerant": app.fault_tolerant,
        },
    )


def run_partition(seed: int = 0) -> Dict[str, Any]:
    """Exactly-once delivery across a lossy wire and a healed partition.

    A master streams numbered messages at a cut-off worker while the
    wire drops a quarter of the data packets and a ten-second partition
    severs the worker's host outright.  The reliable channel retransmits
    through all of it; the recovery layer's partition grace holds the
    (confirmed-silent) host out of the fence until its heartbeats
    return, so the worker is *reprieved* — never fenced, never
    restarted — and every message arrives exactly once, in order.
    """
    from ..recovery import RecoveryConfig

    n_msgs = 40
    s = Session(
        mechanism="pvm", n_hosts=3, seed=seed,
        faults=partition_plan(seed),
        reliability=True,
        recovery=RecoveryConfig(partition_grace_s=12.0),
    )
    got: list = []

    def sink(ctx):
        for _ in range(n_msgs):
            msg = yield from ctx.recv(tag=7)
            got.append(int(msg.buffer.upkint()[0]))

    def master(ctx):
        from ..pvm.message import MessageBuffer

        (tid,) = yield from ctx.spawn("sink", count=1, where=[1])
        for i in range(n_msgs):
            buf = MessageBuffer()
            buf.pkint([i])
            yield from ctx.send(tid, 7, buf)
            yield from ctx.sleep(0.5)

    s.vm.register_program("sink", sink)
    s.vm.register_program("master", master)
    s.vm.start_master("master", host=0)
    assert s.detector is not None and s.coordinator is not None
    assert s.reliability is not None
    s.detector.start()
    s.run(until=80.0)
    return {
        "delivered": len(got),
        "in_order": got == list(range(n_msgs)),
        "reprieved": [h for (_, _, h) in s.coordinator.reprieves],
        "fenced": sorted(s.coordinator.fence.fenced),
        "restarted": len(s.coordinator.records),
        "reliability": s.reliability.stats.as_dict(),
        "dup_deliveries_suppressed": s.reliability.guard.suppressed,
    }


def controller_plan(seed: int) -> FaultPlan:
    """The brain itself dies, mid-eviction, at t=2.5s."""
    return FaultPlan(faults=(ControllerCrash(at_s=2.5),), seed=seed)


def run_controller(seed: int = 0) -> Dict[str, Any]:
    """Controller failover under fire: the brain dies mid-round.

    A control-armed MPVM worknet evicts a host's work at t=2.3s; the
    :class:`ControllerCrash` kills the GS/detector/recovery brain on
    host 0 at t=2.5s, mid-eviction.  The standby on host 1's successor
    takes over 0.4s later under a fresh epoch, adopts or aborts the
    in-flight migration transactions, and re-plans anything abandoned.
    After the run the captured pre-crash handle plays the zombie
    ex-controller: every order it issues bounces off the epoch gate.
    """
    s = Session(
        mechanism="mpvm", n_hosts=4, seed=seed,
        faults=controller_plan(seed), control=True,
    )
    assert s.control is not None
    vm = s.vm
    extra: Dict[str, Any] = {}
    zombie_box: list = []

    def cruncher(ctx):
        yield from ctx.compute(25e6 * 30)
        extra.setdefault("finished_on", []).append(ctx.host.name)

    def boss(ctx):
        yield from ctx.spawn("cruncher", count=2, where=[1, 2])
        # An eviction for the t=2.5s crash to interrupt mid-round; the
        # pre-crash handle is the zombie the epilogue replays.
        yield ctx.sim.timeout(max(0.0, 2.45 - ctx.sim.now))
        zombie_box.append(s.control.handle)
        for ev in s.reclaim(s.host(1)):
            try:
                yield ev
            except PvmError as exc:
                extra["eviction_error"] = str(exc)

    vm.register_program("cruncher", cruncher)
    vm.register_program("boss", boss)
    vm.start_master("boss", host=3)
    s.run(until=120.0)

    plane = s.control

    def stale_count() -> int:
        return sum(
            len(c.txns.stale_rejections)
            for c in s._coordinators
            if getattr(c, "txns", None) is not None
        ) + len(plane.gate.rejections)

    zombie_orders = zombie_refused = 0
    if zombie_box:
        zombie = zombie_box[0]
        before = stale_count()
        zombie_orders = 2
        ghost = type("Ghost", (), {"name": "t-ghost"})()
        zombie.migrate(ghost, s.host(2))
        zombie.confirm_crash(s.host(2))
        zombie_refused = stale_count() - before
    return _summary(s, {
        **extra,
        "controller": plane.controller_name(),
        "epoch": plane.epoch,
        "takeovers": [
            {
                "from": t.from_host, "to": t.to_host,
                "latency_s": round(t.latency, 3),
                "adopted": t.adopted_txns, "aborted": t.aborted_txns,
                "replanned": t.replanned,
            }
            for t in plane.takeovers
        ],
        "control_log": [
            (e.kind, e.host, e.epoch) for e in plane.log.entries
        ],
        "zombie_orders": zombie_orders,
        "zombie_refused": zombie_refused,
    })


def split_control_plan(seed: int) -> FaultPlan:
    """Cut the leader's host away from every standby, then heal."""
    return FaultPlan(
        faults=(
            NetworkPartition(hosts=("hp720-0",), from_s=2.0, until_s=5.0),
        ),
        seed=seed,
    )


def run_split_control(seed: int = 0) -> Dict[str, Any]:
    """The split control plane: partition the brain away from its standbys.

    A replication-armed MPVM worknet (quorum-appended control log,
    leader leases) loses its leader to a :class:`NetworkPartition` that
    cuts host 0 — leader and all — away from every standby for three
    seconds.  The minority leader's lease expires without a quorum ack
    and it *self-fences* strictly before the majority side's staggered
    election completes under a fresh epoch; the pre-cut handle plays
    the zombie whose every order bounces off the epoch gate; and after
    the heal the deposed ex-leader rejoins the succession as a plain
    standby.
    """
    from ..control import ControlConfig
    from ..recovery import RecoveryConfig

    s = Session(
        mechanism="mpvm", n_hosts=5, seed=seed,
        faults=split_control_plan(seed),
        control=ControlConfig(replication=True),
        recovery=RecoveryConfig(partition_grace_s=7.0),
        reliability=True,
    )
    assert s.control is not None
    zombie_box: list = []

    def cruncher(ctx):
        yield from ctx.compute(25e6 * 8)

    def boss(ctx):
        yield from ctx.spawn("cruncher", count=2, where=[1, 2])
        # Capture the doomed leader's command surface just before the
        # cut: the canonical minority-partition zombie.
        yield ctx.sim.timeout(max(0.0, 1.9 - ctx.sim.now))
        zombie_box.append(s.control.handle)

    s.vm.register_program("cruncher", cruncher)
    s.vm.register_program("boss", boss)
    s.vm.start_master("boss", host=4)
    s.run(until=20.0)

    plane = s.control
    fabric = plane.fabric
    assert fabric is not None
    rec = plane.takeovers[0] if plane.takeovers else None

    zombie_orders = zombie_refused = 0
    if zombie_box:
        zombie = zombie_box[0]
        before = len(plane.gate.rejections)
        zombie_orders = 1
        zombie.confirm_crash(s.host(2))
        zombie_refused = len(plane.gate.rejections) - before

    ex_leader = next(r for r in plane.replicas if r.host.name == "hp720-0")
    return {
        "controller": plane.controller_name(),
        "epoch": plane.epoch,
        "self_fences": fabric.self_fences,
        "fence_reason": rec.reason if rec else None,
        "t_fence": round(rec.t_crashed, 3) if rec else None,
        "t_takeover": round(rec.t_takeover, 3) if rec else None,
        "fence_before_takeover": bool(rec and rec.t_crashed < rec.t_takeover),
        "takeover": (
            {"from": rec.from_host, "to": rec.to_host,
             "latency_s": round(rec.latency, 3)}
            if rec else None
        ),
        "ex_leader_state": ex_leader.state,
        "rejoins": fabric.rejoins,
        "leaders_by_epoch": {
            str(e): list(who) for e, who in fabric.leaders_by_epoch.items()
        },
        "quorum_undurable": len(fabric.undurable()),
        "replica_log_kinds": {
            name: [e.kind for e in fabric.log_of(name).entries]
            for name in fabric.names
        },
        "zombie_orders": zombie_orders,
        "zombie_refused": zombie_refused,
    }


def run_demo(
    seed: int = 0,
    *,
    random_schedule: bool = False,
    kinds: tuple = ("crash",),
) -> Dict[str, Dict[str, Any]]:
    """The full chaos run, plus a same-seed replay of the MPVM leg."""
    plan = random_plan(seed, kinds) if random_schedule else None
    rel = _wants_reliability(plan)
    results = {
        "mpvm": run_mpvm(seed, plan, reliability=rel),
        "upvm": run_upvm(seed, plan, reliability=rel),
        "adm": run_adm(seed, plan, reliability=rel),
    }
    results["replay"] = {
        "seed": seed,
        "identical": run_mpvm(seed, plan, reliability=rel) == results["mpvm"],
    }
    return results


def main_partition(seed: int = 0) -> Dict[str, Any]:
    """Pretty-printer behind ``python -m repro faults --partition``."""
    r = run_partition(seed)
    replay = run_partition(seed)
    print(f"partition demo (seed={seed}): 25% data drop on the wire, "
          f"hp720-1 cut off 6s-16s\n")
    print(f"delivered {r['delivered']}/40 messages, "
          f"{'in order' if r['in_order'] else 'OUT OF ORDER (bug!)'}")
    stats = r["reliability"]
    print(f"  channel: {stats['retransmits']} retransmit(s), "
          f"{stats['dup_suppressed']} link-level dup(s) suppressed, "
          f"{r['dup_deliveries_suppressed']} end-to-end dup(s) suppressed")
    print(f"  reprieved after heal: {r['reprieved'] or 'none'}; "
          f"fenced: {r['fenced'] or 'none'}; "
          f"restarted: {r['restarted']}")
    print(f"\nreplay with seed={seed}: "
          f"{'identical' if replay == r else 'DIVERGED (bug!)'}")
    return r


def main_controller(seed: int = 0) -> Dict[str, Any]:
    """Pretty-printer behind ``python -m repro faults --controller``."""
    r = run_controller(seed)
    replay = run_controller(seed)
    print(f"controller failover demo (seed={seed}): the brain dies at "
          f"t=2.5s, mid-eviction\n")
    for t in r["takeovers"]:
        print(f"takeover: {t['from']} -> {t['to']} in {t['latency_s']}s; "
              f"adopted {t['adopted']} txn(s), aborted {t['aborted']}, "
              f"re-planned {t['replanned']}")
    print(f"  controller now {r['controller']}, epoch {r['epoch']}")
    print(f"  migration outcomes: {r['outcomes']}")
    print(f"  control log: " + ", ".join(
        f"{kind}@{host}(e{epoch})" for kind, host, epoch in r["control_log"]
    ))
    print(f"  zombie ex-controller: {r['zombie_refused']}/{r['zombie_orders']} "
          f"order(s) refused by the epoch gate")
    print(f"\nreplay with seed={seed}: "
          f"{'identical' if replay == r else 'DIVERGED (bug!)'}")
    return r


def main_split_control(seed: int = 0) -> Dict[str, Any]:
    """Pretty-printer behind ``python -m repro faults --controller
    --partition``."""
    r = run_split_control(seed)
    replay = run_split_control(seed)
    print(f"split-control-plane demo (seed={seed}): hp720-0 — leader and "
          f"all — cut off 2s-5s, replication armed\n")
    print(f"self-fence: {r['self_fences']} (reason: {r['fence_reason']}) "
          f"at t={r['t_fence']}s")
    t = r["takeover"]
    if t:
        print(f"takeover: {t['from']} -> {t['to']} at t={r['t_takeover']}s "
              f"({t['latency_s']}s after the fence; fence strictly first: "
              f"{r['fence_before_takeover']})")
    print(f"  controller now {r['controller']}, epoch {r['epoch']}; "
          f"leaders by epoch {r['leaders_by_epoch']}")
    print(f"  ex-leader after heal: {r['ex_leader_state']} "
          f"({r['rejoins']} rejoin(s)); "
          f"records without quorum: {r['quorum_undurable']}")
    print(f"  zombie ex-controller: {r['zombie_refused']}/{r['zombie_orders']} "
          f"order(s) refused by the epoch gate")
    print(f"\nreplay with seed={seed}: "
          f"{'identical' if replay == r else 'DIVERGED (bug!)'}")
    return r


def main(
    seed: int = 0,
    *,
    random_schedule: bool = False,
    kinds: tuple = ("crash",),
) -> Dict[str, Dict[str, Any]]:
    results = run_demo(seed, random_schedule=random_schedule, kinds=kinds)
    if random_schedule:
        plan = random_plan(seed, kinds)
        crashes = ", ".join(
            f"{f.host}@{f.at_s:.1f}s" for f in plan.host_crashes()
        )
        drawn = f"{len(plan.faults)} fault(s) over kinds {','.join(kinds)}"
        print(f"chaos plan (seed={seed}, random): {drawn}"
              + (f"; timed crash(es) {crashes}" if crashes else "") + "\n")
    else:
        print(f"chaos plan (seed={seed}): destination hp720-1 dies at TRANSFER "
              f"enter; first 'ctl' packet dropped\n")
    for mech in ("mpvm", "upvm"):
        r = results[mech]
        print(f"{mech.upper()}: outcomes {r['outcomes']}, "
              f"{r['attempts']} protocol attempt(s)")
        if r.get("finished_on"):
            print(f"  work finished on {r['finished_on']} "
                  f"(the crashed destination never got it)")
        for line in r["faults_fired"]:
            print(f"  fired: {line}")
    r = results["adm"]
    took = f"in {r['total_time']:.1f}s " if r["total_time"] is not None else ""
    print(f"ADM: worker(s) {r['lost_workers']} lost mid-round; training "
          f"{'completed' if r['completed'] else 'DID NOT complete'} "
          f"{took}(degraded, not hung)")
    rep = results["replay"]
    print(f"\nreplay with seed={rep['seed']}: "
          f"{'identical' if rep['identical'] else 'DIVERGED (bug!)'}")
    return results


if __name__ == "__main__":  # pragma: no cover
    main()
