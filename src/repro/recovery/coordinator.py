"""Crash-recovery orchestration: fencing, dead letters, restart.

Once the failure detector *confirms* a host death, the
:class:`RecoveryCoordinator` runs the recovery protocol the paper's GS
leaves implicit:

1. **Fence** the host: every subsequent packet to or from it is
   rejected at the network seam (a late heartbeat or data packet from a
   zombie must not resurrect it), and whatever sat in its daemon's
   queues is moved into the dead-letter box.
2. **Reclaim** its tids: every task resident at confirm time is either
   *restarted* — from its latest replicated :class:`CheckpointEngine`
   image on a surviving host chosen by the GS's quarantine-aware
   destination ranking — or *declared lost*, which kills the tid,
   clears its in-flight accounting, and fires the ``TaskExit`` notify
   its peers registered (a master learns, instead of hanging).
3. **Replay** dead letters: messages that were in a pipeline when the
   host died are re-injected for the restarted incarnation (the
   simulated coroutine does not re-execute its sends, so a dropped
   packet would otherwise be lost forever and wedge the protocol).
4. Announce ``HostDelete`` through pvm_notify — ADM masters use this to
   run a re-partition consensus round over the survivors.

Tasks resident on a machine are frozen the instant it physically fails
(``Host.on_fail``): a dead CPU makes no progress.  If the machine comes
back *before* the detector confirms (a transient partition), the frozen
tasks are simply released; once fenced, a returning machine stays
fenced — its state is stale and its tids have been reclaimed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..faults.errors import HostCrashed
from ..pvm.context import Freeze
from ..pvm.errors import PvmError
from ..pvm.tid import tid_str
from ..sim import Event
from .detector import FailureDetector, HeartbeatConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.host import Host
    from ..mpvm.checkpoint import CheckpointEngine
    from ..pvm.message import Message
    from ..pvm.task import Task
    from ..pvm.vm import PvmSystem

__all__ = [
    "DeadLetterBox",
    "NetworkFence",
    "RecoveryConfig",
    "RecoveryCoordinator",
    "RecoveryRecord",
    "TaskRecovery",
]

#: Poll interval while waiting for a crashed task to reach a safe point
#: (outside the library, not mid-migration) before freezing it.
FREEZE_POLL_S = 1e-4


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs for the whole recovery subsystem."""

    heartbeat: HeartbeatConfig = field(default_factory=HeartbeatConfig)
    #: Period of the checkpoints Session.protect() arranges.
    checkpoint_period_s: float = 5.0
    #: Write the first checkpoint immediately at protect() time.
    checkpoint_initial: bool = True
    #: Seconds to wait after a *confirmed* silence before actually
    #: recovering, in case the silence is a partition that heals: a host
    #: heard from again inside the window is reinstated instead of
    #: fenced, and none of its tasks restart.  ``0`` (the default)
    #: recovers immediately — the pre-partition behaviour, and what
    #: keeps earlier exhibits byte-identical.
    partition_grace_s: float = 0.0


class NetworkFence:
    """Network-seam filter that rejects traffic of fenced hosts.

    Installed on ``network.faults`` *around* any existing fault injector
    (``inner``): fenced-host verdicts take precedence, everything else is
    delegated.  With no injector the fence supplies the baseline checks
    itself (down endpoints lose their packets) so the slow path stays
    well-defined.
    """

    def __init__(self, inner=None) -> None:
        self.inner = inner
        self.fenced: set = set()
        #: Packets rejected by the fence (observability / tests).
        self.rejected = 0

    def check(self, src: "Host", dst: "Host", nbytes: float, label: str):
        if src.name in self.fenced or dst.name in self.fenced:
            which = src.name if src.name in self.fenced else dst.name
            self.rejected += 1
            return HostCrashed(f"{which} is fenced ({label})")
        if self.inner is not None:
            return self.inner.check(src, dst, nbytes, label)
        if not src.up or not dst.up:
            which = src.name if not src.up else dst.name
            return HostCrashed(f"{which} is down ({label})")
        return (0.0, 1.0)

    def at_stage(self, *args, **kwargs):
        """Pipeline-stage seam passthrough (fence only guards the wire)."""
        if self.inner is not None and hasattr(self.inner, "at_stage"):
            return self.inner.at_stage(*args, **kwargs)
        return None

    def duplicates(self, src: "Host", dst: "Host", label: str) -> int:
        """Datagram-duplication seam passthrough (fenced links dup nothing)."""
        if src.name in self.fenced or dst.name in self.fenced:
            return 0
        if self.inner is not None and hasattr(self.inner, "duplicates"):
            return self.inner.duplicates(src, dst, label)
        return 0


class DeadLetterBox:
    """Messages rescued from pipelines that a host death tore down."""

    def __init__(self) -> None:
        self.letters: List[Tuple["Message", str]] = []
        self.dropped: List[Tuple["Message", str]] = []

    def capture(self, msg: "Message", reason: str) -> None:
        self.letters.append((msg, reason))

    def drain_store(self, store, reason: str) -> int:
        """Move every queued message out of a daemon Store."""
        n = 0
        while store.items:
            msg = store.items.popleft()
            self.capture(msg, reason)
            n += 1
        return n

    def pop_matching(self, pred) -> List[Tuple["Message", str]]:
        """Remove and return letters whose message satisfies ``pred``."""
        mine = [(m, r) for m, r in self.letters if pred(m)]
        self.letters = [(m, r) for m, r in self.letters if not pred(m)]
        return mine

    def pop_for(self, tid: int) -> List[Tuple["Message", str]]:
        """Remove and return letters addressed to ``tid``."""
        return self.pop_matching(lambda m: m.dst_tid == tid)

    def pop_from(self, tid: int) -> List[Tuple["Message", str]]:
        """Remove and return letters *sent by* ``tid``."""
        return self.pop_matching(lambda m: m.src_tid == tid)

    def discard_for(self, tid: int) -> None:
        """Drop letters involving a tid that is gone for good."""
        gone = [(m, r) for m, r in self.letters
                if m.dst_tid == tid or m.src_tid == tid]
        self.letters = [(m, r) for m, r in self.letters
                        if m.dst_tid != tid and m.src_tid != tid]
        self.dropped.extend(gone)

    def __len__(self) -> int:
        return len(self.letters)


@dataclass
class TaskRecovery:
    """Fate of one task that was resident on a dead host."""

    task: str
    old_tid: int
    outcome: str  #: "restarted" | "lost"
    new_tid: Optional[int] = None
    dst: Optional[str] = None
    t_done: float = 0.0
    replayed: int = 0


@dataclass
class RecoveryRecord:
    """One confirmed host death, start to finish."""

    host: str
    t_failed: float
    t_confirmed: float
    t_done: float = 0.0
    tasks: List[TaskRecovery] = field(default_factory=list)

    @property
    def detection_latency(self) -> float:
        return self.t_confirmed - self.t_failed

    @property
    def recovery_time(self) -> float:
        return self.t_done - self.t_confirmed


class RecoveryCoordinator:
    """Drives detection → fencing → restart for one PVM system.

    ``destination_picker(exclude)`` supplies restart placement — the
    session facade wires in :meth:`GlobalScheduler.pick_destination`
    so restarts respect the same quarantine-aware ranking as every
    other placement; without one, a deterministic first-compatible-host
    fallback is used.
    """

    def __init__(
        self,
        system: "PvmSystem",
        detector: FailureDetector,
        engine: Optional["CheckpointEngine"] = None,
        destination_picker: Optional[
            Callable[[Tuple[str, ...]], Optional["Host"]]
        ] = None,
        partition_grace_s: float = 0.0,
    ) -> None:
        self.system = system
        self.sim = system.sim
        self.detector = detector
        self.engine = engine
        self.destination_picker = destination_picker
        #: See :attr:`RecoveryConfig.partition_grace_s`.
        self.partition_grace_s = partition_grace_s
        self.fence = NetworkFence()
        self.box = DeadLetterBox()
        self.records: List[RecoveryRecord] = []
        #: Confirmed silences that turned out to be healed partitions:
        #: ``(t_confirmed, t_reinstated, host)`` — the hosts recovery
        #: deliberately did *not* restart.
        self.reprieves: List[Tuple[float, float, str]] = []
        #: Migration transaction logs to notify of fences (the session
        #: facade appends each coordinator's ``txns`` here so a commit
        #: into a fenced host is flagged by the exactly-once audit).
        self.txn_logs: List = []
        self._t_failed: Dict[str, float] = {}
        self._frozen: Dict[int, Tuple[Event, float]] = {}
        #: Tids frozen because their host is partition-isolated (a
        #: subset of ``_frozen``'s keys).
        self._isolation_frozen: set = set()
        #: Hosts with a recovery (or grace hold) already in flight —
        #: the idempotence guard: a confirm delivered twice (possible
        #: when a re-armed detector re-adjudicates a death after
        #: controller takeover) must not run recovery twice.
        self._recovering: set = set()
        #: Recoveries currently executing (fence through restart) — the
        #: control plane reads this as its "mid-recovery-fence" FSM state.
        self._active_recoveries = 0
        #: Installed by an armed control plane: current controller epoch,
        #: stamped onto fence records.
        self.epoch_of: Optional[Callable[[], Optional[int]]] = None
        #: Armed control plane's durable decision journal (duck-typed;
        #: fences are recorded so a takeover can re-learn them).
        self.control_log: Optional[Any] = None
        self._installed = False

    # -- wiring ----------------------------------------------------------------
    def install(self) -> None:
        """Arm every hook: fence, dead letters, crash freeze, detector."""
        if self._installed:
            return
        self._installed = True
        network = self.system.network
        self.fence.inner = network.faults
        network.faults = self.fence
        self.system.dead_letters = self.box
        for host in self.system.cluster.hosts:
            host.on_fail.append(self._on_fail)
            host.on_recover.append(self._on_recover)
        self.detector.on_confirm.append(self._on_confirm)
        self.detector.on_isolated.append(self._on_isolated)
        self.detector.on_reconnected.append(self._on_reconnected)
        self.detector.start()

    # -- physical-failure hooks -------------------------------------------------
    def _on_fail(self, host: "Host") -> None:
        self._t_failed.setdefault(host.name, self.sim.now)
        for task in list(self.system.tasks.values()):
            if task.host is host and task.alive:
                self.sim.process(
                    self._freeze_resident(task), name=f"freeze:{task.name}"
                ).defuse()

    def _freeze_resident(self, task: "Task", reason: str = "host-crash"):
        """Freeze a task on a dead (or isolated) machine at its next
        safe point.

        Library sections and migrations finish in (simulated) moments —
        a dead CPU still drains queued work so the state stays
        well-defined — but a bounded give-up protects against a task
        that never reaches a safe point: it is then handled unfrozen at
        confirm time.
        """
        from ..unix.process import ProcState

        give_up_at = self.sim.now + 5.0
        while task.alive and (
            task.in_library
            or task.state is ProcState.MIGRATING
            or task.coroutine is None
        ):
            if self.sim.now >= give_up_at:
                return
            yield self.sim.timeout(FREEZE_POLL_S)
        if not task.alive or task.coroutine is None or not task.coroutine.is_alive:
            return
        if task.tid in self._frozen:
            return
        if reason == "partition-isolated":
            if task.host.name not in self.detector.isolated:
                return  # the cut already healed
        elif task.host.up:
            return  # the outage was transient and already ended
        resume = Event(self.sim)
        task.interrupt_body(Freeze(resume, reason=reason))
        self._frozen[task.tid] = (
            resume, self._t_failed.get(task.host.name, self.sim.now)
        )
        if reason == "partition-isolated":
            self._isolation_frozen.add(task.tid)

    def _on_recover(self, host: "Host") -> None:
        if host.name in self.fence.fenced:
            # Too late: its tids were reclaimed, its state is stale.
            if self.system.tracer:
                self.system.tracer.emit(
                    self.sim.now, "recover.stale", host.name,
                    "returned after fencing; stays fenced",
                )
            return
        # Transient outage: release anything frozen there and move on.
        self._t_failed.pop(host.name, None)
        for tid, (resume, _t0) in list(self._frozen.items()):
            task = self.system.tasks.get(tid)
            if task is not None and task.host is host:
                del self._frozen[tid]
                self._isolation_frozen.discard(tid)
                if not resume.triggered:
                    resume.succeed()

    # -- partition isolation ----------------------------------------------------
    def _on_isolated(self, host: "Host") -> None:
        """The minority side of a cut self-freezes: tasks on a
        reachable-but-isolated machine stop at their next safe point so
        a grace-expired restart elsewhere can never leave *two* live
        incarnations computing (split-brain)."""
        for task in list(self.system.tasks.values()):
            if task.host is host and task.alive:
                self.sim.process(
                    self._freeze_resident(task, reason="partition-isolated"),
                    name=f"freeze:{task.name}",
                ).defuse()

    def _on_reconnected(self, host: "Host") -> None:
        """The cut healed.  If recovery never fenced the host (grace
        covered the outage), thaw its frozen tasks and carry on; a
        *fenced* host's tasks stay frozen forever — their tids were
        reclaimed and restarted elsewhere, and thawing the stale side
        would mint duplicate VPs."""
        if host.name in self.fence.fenced:
            if self.system.tracer:
                self.system.tracer.emit(
                    self.sim.now, "recover.stale", host.name,
                    "partition healed after fencing; stale side stays frozen",
                )
            return
        for tid in list(self._isolation_frozen):
            task = self.system.tasks.get(tid)
            if task is not None and task.host is host:
                self._isolation_frozen.discard(tid)
                entry = self._frozen.pop(tid, None)
                if entry is not None and not entry[0].triggered:
                    entry[0].succeed()

    def unreachable_hosts(self) -> List[str]:
        """Hosts that are unreachable but not (known) dead: suspected by
        the detector or partition-isolated.  The GS consults this (via
        ``unreachable_provider``) to keep evictions and restarts out of
        the minority side of a cut."""
        names = set(self.detector.isolated)
        for name, view in self.detector.views.items():
            if view.state != "alive" and name not in self.fence.fenced:
                names.add(name)
        return sorted(names)

    @property
    def recovery_in_progress(self) -> bool:
        """True while a fence-and-restart sequence is executing."""
        return self._active_recoveries > 0

    # -- confirmed death --------------------------------------------------------
    def _on_confirm(self, host: "Host") -> None:
        if host.name in self.fence.fenced or host.name in self._recovering:
            return  # idempotent: this death is already (being) handled
        self._recovering.add(host.name)
        if self.partition_grace_s > 0:
            self.sim.process(
                self._maybe_recover(host), name=f"recover:{host.name}"
            ).defuse()
        else:
            self.sim.process(
                self._recover_host(host), name=f"recover:{host.name}"
            ).defuse()

    def _maybe_recover(self, host: "Host"):
        """Unreachable ≠ dead: hold recovery for the grace window and
        reinstate instead of fence if the host is heard from again."""
        t_confirmed = self.sim.now
        yield self.sim.timeout(self.partition_grace_s)
        if host.name in self.fence.fenced:
            return
        if self.detector.last_heard(host.name) > t_confirmed:
            # The silence was a partition and it healed: no fence, no
            # restart — the paper's tasks simply resume where they sat.
            # The host leaves the recovering set: a *later* real death
            # must be handled afresh.
            self._recovering.discard(host.name)
            self.reprieves.append((t_confirmed, self.sim.now, host.name))
            self.detector.reinstate(host)
            if self.system.tracer:
                self.system.tracer.emit(
                    self.sim.now, "recover.reprieve", host.name,
                    f"heard again {self.sim.now - t_confirmed:.3f}s after "
                    "confirm; partition healed, no restart",
                )
            return
        yield from self._recover_host(host)

    def _recover_host(self, host: "Host"):
        self._active_recoveries += 1
        try:
            yield from self._recover_host_inner(host)
        finally:
            self._active_recoveries -= 1

    def _recover_host_inner(self, host: "Host"):
        system = self.system
        record = RecoveryRecord(
            host=host.name,
            t_failed=self._t_failed.get(host.name, self.sim.now),
            t_confirmed=self.sim.now,
        )
        # 1. Fence + rescue whatever sat in the dead daemon's queues.
        epoch = self.epoch_of() if self.epoch_of is not None else None
        self.fence.fenced.add(host.name)
        for log in self.txn_logs:
            log.note_fence(host.name, epoch=epoch)
        if self.control_log is not None:
            self.control_log.record("fence", host.name, epoch=epoch)
        pvmd = system.pvmd_on(host)
        n_out = self.box.drain_store(pvmd.outbound, f"fence:{host.name}:out")
        n_in = self.box.drain_store(pvmd.inbound, f"fence:{host.name}:in")
        # Reliable channels hold un-acked messages privately; make them
        # surrender anything bound for the fenced host now, while the
        # restart replay can still deliver it.
        n_rel = 0
        sender = getattr(system, "interhost_sender", None)
        if sender is not None and hasattr(sender, "surrender_to"):
            n_rel = sender.surrender_to(
                host.name, self.box, f"fence:{host.name}"
            )
        if system.tracer:
            system.tracer.emit(
                self.sim.now, "recover.fence", host.name,
                f"fenced; {n_out}+{n_in}+{n_rel} messages to dead letters",
            )

        # 2. Reclaim every resident tid: restart or declare lost.
        residents = [
            t for t in list(system.tasks.values()) if t.host is host and t.alive
        ]
        for task in residents:
            yield from self._reclaim_task(task, record)

        # 3. Tell the application layer (ADM re-partition, masters).
        system.notify.host_deleted(host)
        record.t_done = self.sim.now
        self.records.append(record)
        if system.tracer:
            restarted = sum(1 for t in record.tasks if t.outcome == "restarted")
            lost = sum(1 for t in record.tasks if t.outcome == "lost")
            system.tracer.emit(
                self.sim.now, "recover.done", host.name,
                f"detection={record.detection_latency:.3f}s "
                f"recovery={record.recovery_time:.3f}s "
                f"restarted={restarted} lost={lost}",
            )

    def _reclaim_task(self, task: "Task", record: RecoveryRecord):
        system = self.system
        old_tid = task.tid
        frozen = self._frozen.pop(old_tid, None)
        self._isolation_frozen.discard(old_tid)
        resume, frozen_at = frozen if frozen else (None, record.t_failed)
        outcome = TaskRecovery(task=task.name, old_tid=old_tid, outcome="lost")
        record.tasks.append(outcome)

        engine = self.engine
        if engine is not None and engine.restartable(task):
            dst = self._pick_destination(task)
            if dst is not None:
                try:
                    yield from engine.restart(
                        task, dst, resume=resume, frozen_at=frozen_at
                    )
                except PvmError as exc:
                    if system.tracer:
                        system.tracer.emit(
                            self.sim.now, "recover.failed", task.name,
                            f"restart on {dst.name} failed: {exc}",
                        )
                else:
                    outcome.outcome = "restarted"
                    outcome.new_tid = task.tid
                    outcome.dst = dst.name
                    outcome.replayed = self._replay_letters(old_tid, task)
                    outcome.t_done = self.sim.now
                    return

        # Unprotected (or unrecoverable): the tid dies, loudly.
        self._declare_lost(task, resume)
        outcome.t_done = self.sim.now

    def _pick_destination(self, task: "Task") -> Optional["Host"]:
        src = task.host
        exclude = tuple(self.fenced_or_down())
        if self.destination_picker is not None:
            dst = self.destination_picker(exclude)
            if dst is not None and src.migration_compatible(dst):
                return dst
            # The ranked choice is incompatible (heterogeneous worknet):
            # fall through to the compatibility-aware scan.
        for host in self.system.cluster.hosts:
            if host is src or host.name in exclude:
                continue
            if host.up and src.migration_compatible(host):
                return host
        return None

    def fenced_or_down(self) -> List[str]:
        return sorted(
            self.fence.fenced
            | {h.name for h in self.system.cluster.hosts if not h.up}
        )

    def _replay_letters(self, old_tid: int, task: "Task") -> int:
        """Re-inject rescued messages for a restarted task.

        Inbound letters (addressed to the old tid, possibly through an
        older forwarding chain) go through the new host's daemon — the
        forwarding table routes them to the new tid.  Outbound letters
        (sent by the dead incarnation but never delivered) are re-sent
        from the new host: the coroutine carries its state across the
        restart and will *not* re-execute those sends, so without replay
        they would be lost forever.
        """
        system = self.system
        new_tid = task.tid
        pvmd = system.pvmd_on(task.host)
        n = 0
        for msg, _reason in self.box.pop_matching(
            lambda m: system.routable_tid(m.dst_tid) == new_tid
        ):
            pvmd.enqueue_inbound(msg)
            n += 1
        for msg, _reason in self.box.pop_matching(
            lambda m: system.routable_tid(m.src_tid) == new_tid
        ):
            msg.src_tid = new_tid  # the sender's live identity
            pvmd.enqueue_outbound(msg)
            n += 1
        if n and system.tracer:
            system.tracer.emit(
                self.sim.now, "recover.replay", task.name,
                f"{n} dead letters re-injected",
            )
        return n

    def _declare_lost(self, task: "Task", resume: Optional[Event]) -> None:
        system = self.system
        tid = task.tid
        if system.tracer:
            system.tracer.emit(
                self.sim.now, "recover.tasklost", task.name,
                f"{tid_str(tid)} died with {task.host.name} (no checkpoint)",
            )
        system.kill_task(tid)  # unregisters + fires the TaskExit notify
        if resume is not None and not resume.triggered:
            resume.succeed()
        system.clear_inflight(tid)
        self.box.discard_for(tid)
