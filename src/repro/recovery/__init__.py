"""Crash detection & recovery for the simulated worknet.

The paper's systems assume hosts leave *announcedly* (owner reclamation
drives a vacate).  This package adds survivability for the unannounced
case: a phi-accrual heartbeat :class:`FailureDetector` on the GS
machine, a :class:`RecoveryCoordinator` that fences confirmed-dead
hosts, reclaims their tids and restarts checkpoint-protected tasks on
survivors, and the supporting plumbing (``pvm_notify`` lives in
:mod:`repro.pvm.notify`, checkpoint replication in
:mod:`repro.mpvm.checkpoint`).

Everything here is **off by default**: a :class:`repro.api.Session`
only arms it with ``recovery=True`` (or a :class:`RecoveryConfig`), so
the paper's fault-free exhibits are untouched.  See DESIGN.md §10.
"""

from .coordinator import (
    DeadLetterBox,
    NetworkFence,
    RecoveryConfig,
    RecoveryCoordinator,
    RecoveryRecord,
    TaskRecovery,
)
from .detector import FailureDetector, HeartbeatConfig

__all__ = [
    "DeadLetterBox",
    "FailureDetector",
    "HeartbeatConfig",
    "NetworkFence",
    "RecoveryConfig",
    "RecoveryCoordinator",
    "RecoveryRecord",
    "TaskRecovery",
]
