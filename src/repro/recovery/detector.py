"""Heartbeat failure detector.

Every pvmd gossips a small liveness datagram to the GS machine on a
configurable period; the detector turns *silence* into suspicion with a
phi-accrual-style score (Hayashibara et al.): with heartbeats modelled
as arriving at mean interval ``m``, the suspicion that a host whose last
heartbeat is ``Δt`` old has died is

    phi = -log10 P(next arrival > Δt)  ≈  0.4343 · Δt / m

(the exponential-tail form).  Two thresholds split the score into three
states: ``alive`` → ``suspect`` (``suspect_phi``) → ``confirmed``
(``confirm_phi``, sticky).  Because ``m`` is estimated from a sliding
window of *observed* inter-arrival times, transient link delay injected
by the fault layer stretches the window mean and raises the bar before
it raises the alarm — the property that keeps false positives out.

Determinism: the detector uses no random numbers at all.  Senders are
staggered deterministically (host ``i`` of ``n`` offsets its first beat
by ``period·i/n``), so the same seed (which fixes the rest of the
simulation) yields an identical suspicion timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from ..pvm.errors import PvmError

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.host import Host
    from ..pvm.vm import PvmSystem

__all__ = ["HeartbeatConfig", "FailureDetector", "LOG10_E"]

#: log10(e): converts mean-intervals-elapsed into the phi scale.
LOG10_E = 0.4342944819032518

ALIVE = "alive"
SUSPECT = "suspect"
CONFIRMED = "confirmed"


@dataclass(frozen=True)
class HeartbeatConfig:
    """Detector tunables (defaults sized for the paper's 10 Mb/s worknet)."""

    #: Gossip period: one 64-byte datagram per host per period.
    period_s: float = 0.5
    #: Sliding window of inter-arrival samples for the mean estimate.
    window: int = 8
    #: phi at which a host becomes suspect (≈2.3 mean intervals silent).
    suspect_phi: float = 1.0
    #: phi at which death is confirmed (≈4.6 mean intervals; sticky).
    confirm_phi: float = 2.0
    #: Wire bytes per heartbeat datagram.
    hb_bytes: int = 64
    #: Arrivals required before phi is trusted (cold start uses period_s).
    min_samples: int = 3
    #: Consecutive heartbeat *send* failures (the datagram died on the
    #: wire while the host itself is up) before the host is flagged
    #: isolated — the signature of a partition, not a crash.  A crashed
    #: host never reaches this: it stops sending instead of failing.
    isolation_after: int = 3


@dataclass
class _HostView:
    """Per-monitored-host detector state."""

    last_arrival: float
    intervals: List[float] = field(default_factory=list)
    state: str = ALIVE
    samples: int = 0

    def mean_interval(self, cfg: HeartbeatConfig) -> float:
        if self.samples < cfg.min_samples or not self.intervals:
            return cfg.period_s
        return sum(self.intervals) / len(self.intervals)


class FailureDetector:
    """Phi-accrual heartbeat detector running on the GS machine.

    ``on_confirm`` callbacks fire exactly once per confirmed host, at the
    scan that crosses ``confirm_phi``.  ``timeline`` records every state
    transition as ``(t, host_name, state, phi)`` — the determinism
    contract of the soak harness asserts this list is identical across
    runs with the same seed.
    """

    def __init__(
        self,
        system: "PvmSystem",
        home: "Host",
        config: Optional[HeartbeatConfig] = None,
    ) -> None:
        self.system = system
        self.sim = system.sim
        self.home = home
        self.config = config or HeartbeatConfig()
        self.on_confirm: List[Callable[["Host"], None]] = []
        #: Fired when a host's heartbeats start *failing on the wire*
        #: while it is up (``isolation_after`` consecutive failures) —
        #: it is cut off, not dead.
        self.on_isolated: List[Callable[["Host"], None]] = []
        #: Fired when an isolated host's heartbeats get through again.
        self.on_reconnected: List[Callable[["Host"], None]] = []
        self.views: Dict[str, _HostView] = {}
        self.timeline: List[Tuple[float, str, str, float]] = []
        #: Host names currently flagged isolated (see ``on_isolated``).
        self.isolated: set = set()
        self.enabled = False
        self._monitored: List["Host"] = []
        #: Bumped by :meth:`rearm`; sender/scanner loops of an older
        #: generation retire at their next wake-up.
        self._generation = 0

    def start(self) -> None:
        """Launch one sender per remote host plus the scanner."""
        if self.enabled:
            return
        self.enabled = True
        now = self.sim.now
        self._monitored = [h for h in self.system.cluster.hosts if h is not self.home]
        for host in self._monitored:
            self.views[host.name] = _HostView(last_arrival=now)
        self._spawn_loops()

    def _spawn_loops(self) -> None:
        n = max(1, len(self._monitored))
        gen = self._generation
        for idx, host in enumerate(self._monitored):
            offset = self.config.period_s * idx / n
            self.sim.process(
                self._sender(host, offset, gen), name=f"hb:{host.name}"
            ).defuse()
        self.sim.process(self._scanner(gen), name="hb:scanner").defuse()

    def stop(self) -> None:
        """Stop gossiping (the sender/scanner loops drain on next wake)."""
        self.enabled = False

    def rearm(self, home: "Host", *, confirmed: Iterable[str] = ()) -> None:
        """Re-home the detector on a new controller with fresh baselines.

        Called on controller takeover: the standby at ``home`` starts
        hearing heartbeats *now*, so every view's arrival clock restarts
        at the current instant — the silent gap while no controller was
        listening must not read as host silence (no false confirms).
        Hosts in ``confirmed`` (the durable fence record) start directly
        CONFIRMED: their death is already adjudicated state, not a fresh
        suspicion to re-derive.  The previous generation's sender and
        scanner loops retire at their next wake-up; the ``isolated`` set
        carries over (wire-level state — an unhealed partition is still
        a partition, and its eventual reconnect must still fire).
        """
        self._generation += 1
        self.home = home
        self.enabled = True
        now = self.sim.now
        confirmed = set(confirmed)
        self._monitored = [h for h in self.system.cluster.hosts if h is not home]
        for host in self._monitored:
            view = _HostView(last_arrival=now)
            if host.name in confirmed:
                view.state = CONFIRMED
            self.views[host.name] = view
        if self.system.tracer:
            self.system.tracer.emit(
                self.sim.now, "hb.rearm", home.name,
                f"detector re-homed; {len(self._monitored)} baselines reset",
            )
        self._spawn_loops()

    # -- processes -------------------------------------------------------------
    def _sender(self, host: "Host", offset: float, gen: Optional[int] = None):
        cfg = self.config
        if gen is None:
            gen = self._generation
        if offset > 0:
            yield self.sim.timeout(offset)
        consecutive_failures = 0
        while self.enabled and gen == self._generation:
            if host.up:
                try:
                    yield self.system.network.transfer(
                        host, self.home, cfg.hb_bytes, label="heartbeat"
                    )
                except PvmError:
                    # Lost datagram: silence is the signal for phi, but a
                    # *streak* of send failures from a live host is the
                    # distinct signature of a partition.
                    consecutive_failures += 1
                    if (
                        consecutive_failures >= cfg.isolation_after
                        and host.name not in self.isolated
                    ):
                        self._set_isolated(host, True)
                else:
                    self._arrived(host.name)
                    consecutive_failures = 0
                    if host.name in self.isolated:
                        self._set_isolated(host, False)
            yield self.sim.timeout(cfg.period_s)

    def _arrived(self, name: str) -> None:
        view = self.views[name]
        now = self.sim.now
        view.intervals.append(now - view.last_arrival)
        if len(view.intervals) > self.config.window:
            view.intervals.pop(0)
        view.last_arrival = now
        view.samples += 1
        if view.state is SUSPECT:
            # Back from the brink: a late heartbeat clears suspicion.
            self._transition(name, view, ALIVE, 0.0)

    def _scanner(self, gen: Optional[int] = None):
        cfg = self.config
        if gen is None:
            gen = self._generation
        while self.enabled and gen == self._generation:
            yield self.sim.timeout(cfg.period_s)
            if not self.enabled or gen != self._generation:
                break  # retired (stop/rearm) while asleep
            for host in self._monitored:
                view = self.views[host.name]
                if view.state is CONFIRMED:
                    continue  # sticky: recovery owns the host now
                score = self.phi(host.name)
                if score >= cfg.confirm_phi:
                    self._transition(host.name, view, CONFIRMED, score)
                    for cb in list(self.on_confirm):
                        cb(host)
                elif score >= cfg.suspect_phi:
                    if view.state is not SUSPECT:
                        self._transition(host.name, view, SUSPECT, score)
                elif view.state is SUSPECT:
                    self._transition(host.name, view, ALIVE, score)

    def _set_isolated(self, host: "Host", flag: bool) -> None:
        if flag:
            self.isolated.add(host.name)
            callbacks = self.on_isolated
            what = "isolated (heartbeats failing on the wire)"
        else:
            self.isolated.discard(host.name)
            callbacks = self.on_reconnected
            what = "reconnected (heartbeats flowing again)"
        if self.system.tracer:
            self.system.tracer.emit(self.sim.now, "hb.isolation", host.name, what)
        for cb in list(callbacks):
            cb(host)

    def reinstate(self, host: "Host") -> None:
        """Take a CONFIRMED host back to ALIVE monitoring.

        Used when the recovery layer decides a confirmed silence was a
        partition after all (the host was heard from again inside the
        grace window): the sticky confirm is undone, the arrival window
        restarts cold, and a *later* real death will be detected — and
        ``on_confirm`` fired — all over again.
        """
        view = self.views.get(host.name)
        if view is None or view.state is not CONFIRMED:
            return
        view.intervals.clear()
        view.samples = 0
        view.last_arrival = self.sim.now
        self._transition(host.name, view, ALIVE, 0.0)

    # -- queries ---------------------------------------------------------------
    def last_heard(self, name: str) -> float:
        """Simulated time of the most recent heartbeat arrival."""
        return self.views[name].last_arrival

    def phi(self, name: str) -> float:
        """Current suspicion score for ``name``."""
        view = self.views[name]
        elapsed = self.sim.now - view.last_arrival
        return LOG10_E * elapsed / view.mean_interval(self.config)

    def state(self, name: str) -> str:
        return self.views[name].state

    def _transition(self, name: str, view: _HostView, state: str, score: float) -> None:
        view.state = state
        self.timeline.append((self.sim.now, name, state, round(score, 6)))
        if self.system.tracer:
            self.system.tracer.emit(
                self.sim.now, "hb.state", name, f"{state} phi={score:.3f}",
            )

    def __repr__(self) -> str:
        states = {n: v.state for n, v in self.views.items()}
        return f"<FailureDetector home={self.home.name} {states}>"
