"""The exhibit subcommands: ``list``, ``report``, ``run``."""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List


def register(sub: "argparse._SubParsersAction") -> None:
    p_list = sub.add_parser("list", help="list the available exhibits")
    p_list.set_defaults(handler=run_list)

    p_report = sub.add_parser("report", help="regenerate every exhibit")
    p_report.add_argument("--json", action="store_true",
                          help="emit results as JSON")
    p_report.set_defaults(handler=run_report)

    p_run = sub.add_parser("run", help="regenerate specific exhibits")
    p_run.add_argument("exhibit", nargs="+", help="exhibit name(s), e.g. table2")
    p_run.add_argument("--json", action="store_true",
                       help="emit results as JSON")
    p_run.set_defaults(handler=run_run)


def run_exhibits(names: List[str], as_json: bool) -> int:
    from ..experiments import EXPERIMENTS, render_report, run_all

    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown exhibit(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    results = run_all(only=names or None)
    if as_json:
        print(json.dumps([dataclasses.asdict(r) for r in results], indent=2))
    else:
        print(render_report(results))
    return 0 if all(r.ok for r in results) else 1


def run_list(ns: argparse.Namespace) -> int:
    from ..experiments import EXPERIMENTS

    print("available exhibits:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    return 0


def run_report(ns: argparse.Namespace) -> int:
    return run_exhibits([], as_json=ns.json)


def run_run(ns: argparse.Namespace) -> int:
    return run_exhibits(ns.exhibit, as_json=ns.json)
