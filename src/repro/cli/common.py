"""Shared plumbing for the CLI subcommand modules."""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Optional


def write_out(doc: Dict[str, Any], path: str) -> None:
    """Write a JSON document to ``path``, creating missing parent dirs."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def emit(
    doc: Dict[str, Any],
    render: Callable[[Dict[str, Any]], str],
    *,
    as_json: bool,
    out: Optional[str] = None,
) -> None:
    """The every-subcommand output contract: ``--out`` file + stdout."""
    if out:
        write_out(doc, out)
    print(json.dumps(doc, indent=2) if as_json else render(doc))
