"""Command-line interface, one module per subcommand.

Usage::

    python -m repro list                  # available exhibits
    python -m repro report                # regenerate everything
    python -m repro run table2 figure4    # specific exhibits
    python -m repro faults --seed 7       # seeded chaos demo
    python -m repro faults --random --kinds drop,dup,reorder,partition
    python -m repro faults --partition    # reliable-channel partition demo
    python -m repro bench --json          # kernel-scale benchmarks
    python -m repro soak --seeds 20       # crash-recovery survivability soak
    python -m repro soak --reliability    # lossy/partition network soak
    python -m repro scenarios --list      # the declarative scenario catalog
    python -m repro scenarios --sweep     # arrival x fault x network matrix
    python -m repro table2 figure4        # legacy spelling of `run`

``--json`` switches any subcommand to machine-readable output; ``--out``
writes the JSON document to a file, creating missing parent directories.

Each subcommand lives in its own module exposing ``register(sub)``,
which adds the subparser and binds its handler via
``set_defaults(handler=...)``; :func:`main` just dispatches.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from . import bench, exhibits, faults, scenarios, soak

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Adaptive Load Migration Systems for PVM'.",
    )
    sub = parser.add_subparsers(dest="command")
    exhibits.register(sub)
    faults.register(sub)
    bench.register(sub)
    soak.register(sub)
    scenarios.register(sub)
    return parser


def main(argv: List[str]) -> int:
    from ..experiments import EXPERIMENTS

    args = argv[1:]
    # Legacy spelling: bare exhibit names, e.g. `python -m repro table2`.
    if args and all(a in EXPERIMENTS for a in args):
        return exhibits.run_exhibits(args, as_json=False)

    parser = build_parser()
    ns = parser.parse_args(args)
    handler = getattr(ns, "handler", None)
    if handler is None:
        parser.print_help()
        return 0
    return handler(ns)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(sys.argv))
