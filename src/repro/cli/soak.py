"""The ``soak`` subcommand: crash-recovery and reliability soaks."""

from __future__ import annotations

import argparse

from .common import emit


def register(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser(
        "soak", help="crash-recovery survivability soak (BENCH_recovery.json)"
    )
    p.add_argument("--seeds", type=int, default=20,
                   help="number of seeded crash schedules (default 20)")
    p.add_argument("--json", action="store_true",
                   help="emit the soak document as JSON")
    p.add_argument("--smoke", action="store_true",
                   help="tiny workload (CI smoke / CLI tests)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="also write the JSON document to FILE "
                        "(missing parent directories are created)")
    p.add_argument("--reliability", action="store_true",
                   help="lossy/partition network soak instead of the "
                        "crash soak (BENCH_reliability.json)")
    p.add_argument("--control", action="store_true",
                   help="controller-failover soak instead of the crash "
                        "soak (BENCH_control.json)")
    p.add_argument("--legs", nargs="+", metavar="LEG", default=None,
                   choices=["states", "partition", "nested"],
                   help="control-soak legs to run (default: all three; "
                        "only with --control)")
    p.set_defaults(handler=run)


def run(ns: argparse.Namespace) -> int:
    if ns.reliability and ns.control:
        raise SystemExit("pick one of --reliability / --control")
    if ns.legs and not ns.control:
        raise SystemExit("--legs only applies to the --control soak")
    if ns.control:
        from ..experiments.soak_control import (
            render_soak_control,
            run_soak_control,
        )

        doc = run_soak_control(seeds=ns.seeds, smoke=ns.smoke, legs=ns.legs)
        emit(doc, render_soak_control, as_json=ns.json, out=ns.out)
        return 0 if doc["ok"] else 1
    if ns.reliability:
        from ..experiments.soak_reliability import (
            render_soak_reliability,
            run_soak_reliability,
        )

        doc = run_soak_reliability(seeds=ns.seeds, smoke=ns.smoke)
        emit(doc, render_soak_reliability, as_json=ns.json, out=ns.out)
        return 0 if doc["ok"] else 1
    from ..experiments.soak import render_soak, run_soak

    doc = run_soak(seeds=ns.seeds, smoke=ns.smoke)
    emit(doc, render_soak, as_json=ns.json, out=ns.out)
    return 0 if doc["ok"] else 1
