"""The ``faults`` subcommand: seeded chaos and partition demos."""

from __future__ import annotations

import argparse
import json
from typing import Tuple

from ..faults.plan import KNOWN_FAULT_KINDS
from .common import write_out


def register(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser(
        "faults", help="seeded chaos demo: one fault plan vs all mechanisms"
    )
    p.add_argument("--seed", type=int, default=0,
                   help="fault-plan seed (default 0)")
    p.add_argument("--random", action="store_true",
                   help="seeded random fault schedule (FaultPlan.random) "
                        "instead of the curated plan")
    p.add_argument("--kinds", default="crash", metavar="K1,K2,...",
                   help="fault kinds the --random schedule draws from "
                        f"(known: {','.join(KNOWN_FAULT_KINDS)}; "
                        "default: crash)")
    p.add_argument("--partition", action="store_true",
                   help="lossy-wire + healed-partition demo: reliable "
                        "channels, partition grace, exactly-once delivery")
    p.add_argument("--controller", action="store_true",
                   help="controller-failover demo: the brain dies "
                        "mid-eviction; epoch-fenced takeover (combine "
                        "with --partition for the split control plane: "
                        "minority leader self-fences, majority elects)")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="also write the JSON document to FILE "
                        "(missing parent directories are created)")
    p.set_defaults(handler=run)


def _parse_kinds(raw: str) -> Tuple[str, ...]:
    kinds = tuple(k.strip() for k in raw.split(",") if k.strip())
    unknown = sorted(set(kinds) - set(KNOWN_FAULT_KINDS))
    if unknown:
        raise SystemExit(
            f"unknown fault kind(s): {', '.join(unknown)}; "
            f"known: {', '.join(KNOWN_FAULT_KINDS)}"
        )
    return kinds or ("crash",)


def run(ns: argparse.Namespace) -> int:
    from ..faults.demo import (
        main as demo_main,
        main_controller,
        main_partition,
        main_split_control,
        run_controller,
        run_demo,
        run_partition,
        run_split_control,
    )

    kinds = _parse_kinds(ns.kinds)
    if ns.partition and ns.controller:
        # Both at once: the split control plane — the partition lands
        # between the replicated leader and its standbys.
        doc = run_split_control(ns.seed) if ns.json else main_split_control(ns.seed)
    elif ns.controller:
        doc = run_controller(ns.seed) if ns.json else main_controller(ns.seed)
    elif ns.partition:
        doc = run_partition(ns.seed) if ns.json else main_partition(ns.seed)
    else:
        doc = (
            run_demo(ns.seed, random_schedule=ns.random, kinds=kinds)
            if ns.json
            else demo_main(ns.seed, random_schedule=ns.random, kinds=kinds)
        )
    if ns.json:
        print(json.dumps(doc, indent=2))
    if ns.out:
        write_out(doc, ns.out)
    return 0
