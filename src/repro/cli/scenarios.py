"""The ``scenarios`` subcommand: declarative matrix cells and sweeps."""

from __future__ import annotations

import argparse
import json

from .common import emit, write_out


def register(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser(
        "scenarios",
        help="declarative scenario matrix: list cells, run one, sweep all",
    )
    what = p.add_mutually_exclusive_group(required=True)
    what.add_argument("--list", action="store_true", dest="list_cells",
                      help="list every catalog cell (matrix + extras)")
    what.add_argument("--run", metavar="CELL", default=None,
                      help="run one catalog cell by name "
                           "(e.g. steady/random/lossy)")
    what.add_argument("--sweep", action="store_true",
                      help="run the full arrival x fault x network matrix")
    p.add_argument("--seed", type=int, default=0,
                   help="scenario seed (default 0)")
    p.add_argument("--scheduler", metavar="POLICY", default=None,
                   choices=("greedy", "predictive"),
                   help="override the GS placement policy of the cell(s) "
                        "being run (greedy | predictive)")
    p.add_argument("--smoke", action="store_true",
                   help="shrunken workload per cell (CI smoke)")
    p.add_argument("--json", action="store_true",
                   help="emit the result document as JSON")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="also write the JSON document to FILE "
                        "(missing parent directories are created)")
    p.set_defaults(handler=run)


def run(ns: argparse.Namespace) -> int:
    from ..scenarios import (
        matrix_specs,
        named_specs,
        render_row,
        render_sweep,
        run_cell,
        run_sweep,
        spec_by_name,
    )

    if ns.list_cells:
        specs = named_specs(seed=ns.seed)
        matrix = {s.name for s in matrix_specs(seed=ns.seed)}
        doc = {name: spec.to_json() for name, spec in specs.items()}
        if ns.out:
            write_out(doc, ns.out)
        if ns.json:
            print(json.dumps(doc, indent=2))
            return 0
        print(f"scenario catalog ({len(specs)} cells):")
        for name, spec in specs.items():
            tag = "matrix" if name in matrix else "extra"
            print(f"  {name:<28s} [{tag}] {spec.describe()}")
        return 0

    if ns.run is not None:
        try:
            spec = spec_by_name(ns.run, seed=ns.seed)
        except KeyError as exc:
            raise SystemExit(exc.args[0]) from None
        if ns.scheduler is not None:
            spec = spec.with_(scheduler=ns.scheduler)
        row = run_cell(spec, smoke=ns.smoke)
        emit(row, render_row, as_json=ns.json, out=ns.out)
        return 0 if row["ok"] else 1

    specs = matrix_specs(seed=ns.seed)
    if ns.scheduler is not None:
        specs = [s.with_(scheduler=ns.scheduler) for s in specs]
    doc = run_sweep(specs, smoke=ns.smoke)
    emit(doc, render_sweep, as_json=ns.json, out=ns.out)
    return 0 if doc["ok"] else 1
