"""The ``bench`` subcommand: kernel-scale wall-clock benchmarks."""

from __future__ import annotations

import argparse

from .common import emit


def register(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser(
        "bench", help="kernel-scale wall-clock benchmarks (BENCH_kernel.json)"
    )
    p.add_argument("--json", action="store_true",
                   help="emit the benchmark document as JSON")
    p.add_argument("--smoke", action="store_true",
                   help="tiny sizes (CI smoke / CLI tests)")
    p.add_argument("--queue", choices=("heap", "calendar"), default="heap",
                   help="event-queue backend for the single-backend benches "
                        "(the storm bench always measures both)")
    p.add_argument("--gs-ab", action="store_true", dest="gs_ab",
                   help="run the greedy-vs-predictive scheduler A/B bench "
                        "(BENCH_scheduler.json) instead of the kernel bench")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="also write the JSON document to FILE "
                        "(missing parent directories are created)")
    p.set_defaults(handler=run)


def run(ns: argparse.Namespace) -> int:
    if ns.gs_ab:
        from ..experiments.bench_scheduler import render_bench, run_bench

        doc = run_bench(smoke=ns.smoke)
    else:
        from ..experiments.bench import render_bench, run_bench

        doc = run_bench(smoke=ns.smoke, queue=ns.queue)
    emit(doc, render_bench, as_json=ns.json, out=ns.out)
    return 0 if doc.get("ok", True) else 1
