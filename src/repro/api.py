"""The public session facade: one object that wires a whole scenario.

Historically every script assembled a scenario by hand — build a
:class:`~repro.hw.Cluster`, pick a system class, construct a
:class:`~repro.gs.GlobalScheduler`, remember which mechanism wants which
client object, and (new in the fault layer) arm a
:class:`~repro.faults.FaultInjector` against three different seams.
:class:`Session` owns that wiring behind keyword-only arguments::

    from repro.api import Session
    from repro.faults import FaultPlan, HostCrash

    s = Session(mechanism="mpvm", n_hosts=3, seed=7,
                faults=FaultPlan(faults=(HostCrash(host="hp720-1",
                                                   stage="transfer"),)))
    ...register programs on s.vm, start apps...
    s.run(until=3600)

What a session wires, per mechanism:

* ``"pvm"``  — plain PVM, no migration surface.
* ``"mpvm"`` / ``"upvm"`` — the system *is* the migration client;
  ``s.scheduler`` builds the GS over it (installing the GS as the
  reroute router) on first use.
* ``"adm"``  — plain PVM underneath; the client comes from the
  application, so build the app against ``s.vm`` and call
  ``s.adopt(app)`` to receive the wired GS.

When the session carries a non-empty fault plan, the injector is
installed on the network seam, handed to every migration coordinator the
session knows about, and the stage policy defaults to
:meth:`StagePolicy.resilient` so injected transients are retried.
Everything stays deterministic under ``(seed, faults.seed)``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from .control import ControlConfig, ControlPlane
from .faults import ControllerCrash, FaultInjector, FaultPlan
from .gs import GlobalScheduler, SchedulerConfig, SchedulerPolicy
from .hw import Cluster, Host, HostSpec
from .migration import MigrationStats, StagePolicy
from .mpvm import MpvmSystem
from .mpvm.checkpoint import CheckpointEngine
from .pvm import PvmSystem
from .recovery import FailureDetector, RecoveryConfig, RecoveryCoordinator
from .reliability import ReliabilityConfig, ReliabilityLayer
from .upvm import UpvmSystem

__all__ = ["Session", "SessionConfig"]

_SYSTEMS = {
    "pvm": PvmSystem,
    "mpvm": MpvmSystem,
    "upvm": UpvmSystem,
    "adm": PvmSystem,  # ADM is an application discipline on plain PVM
}

#: Sentinel distinguishing "not passed" from explicit None for the
#: deprecated flat quarantine keywords.
_UNSET: Any = object()


def _policy_name(spec: Any) -> str:
    """The policy name a scheduler spec will resolve to (for the record)."""
    if spec is None:
        return "greedy"
    if isinstance(spec, str):
        return spec
    if isinstance(spec, SchedulerConfig):
        return spec.policy
    return str(getattr(spec, "name", type(spec).__name__))


@dataclass(frozen=True)
class SessionConfig:
    """Frozen record of what a :class:`Session` was built with."""

    mechanism: str = "mpvm"
    n_hosts: int = 2
    seed: int = 0
    trace: bool = True
    default_route: str = "daemon"
    #: Name of the GS placement policy the session will build.
    scheduler: str = "greedy"
    faults: FaultPlan = FaultPlan()
    #: Crash detection & recovery armed (off by default: the paper's
    #: exhibits run without any heartbeat traffic).
    recovery: bool = False
    #: Reliable interhost transport armed (off by default: raw
    #: datagrams, exactly the paper's wire model).
    reliability: bool = False
    #: Crash-tolerant control plane armed (off by default: the brain is
    #: the immortal ambient singleton of earlier releases).
    control: bool = False


class Session:
    """One fully wired scenario (see module docs).  Keyword-only."""

    def __init__(
        self,
        *,
        cluster: Optional[Cluster] = None,
        mechanism: str = "mpvm",
        n_hosts: int = 2,
        hosts: Optional[Sequence[HostSpec]] = None,
        seed: int = 0,
        trace: bool = True,
        faults: Optional[FaultPlan] = None,
        policy: Optional[StagePolicy] = None,
        default_route: str = "daemon",
        scheduler: "SchedulerConfig | SchedulerPolicy | str | None" = None,
        quarantine_after: Any = _UNSET,
        quarantine_ttl: Any = _UNSET,
        recovery: "bool | RecoveryConfig | None" = None,
        reliability: "bool | ReliabilityConfig | None" = None,
        control: "bool | ControlConfig | None" = None,
    ) -> None:
        if mechanism not in _SYSTEMS:
            raise ValueError(
                f"unknown mechanism {mechanism!r}; pick one of {sorted(_SYSTEMS)}"
            )
        if quarantine_after is not _UNSET or quarantine_ttl is not _UNSET:
            if scheduler is not None:
                raise TypeError(
                    "quarantine_after/quarantine_ttl cannot be combined with "
                    "scheduler=; set them on the SchedulerConfig instead"
                )
            warnings.warn(
                "Session(quarantine_after=..., quarantine_ttl=...) is "
                "deprecated; use scheduler=SchedulerConfig(quarantine_after="
                "..., quarantine_ttl=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            flat: dict = {}
            if quarantine_after is not _UNSET:
                flat["quarantine_after"] = quarantine_after
            if quarantine_ttl is not _UNSET:
                flat["quarantine_ttl"] = quarantine_ttl
            scheduler = SchedulerConfig(**flat)
        self._scheduler_spec = scheduler
        self.mechanism = mechanism
        self.cluster = cluster or Cluster(
            n_hosts=n_hosts, specs=hosts, seed=seed, trace=trace
        )
        if control is True:
            control = ControlConfig()
        elif control is False:
            control = None
        self._control_config: Optional[ControlConfig] = control
        if control is not None:
            # The control plane hosts the recovery stack (detector,
            # fences, restart engine): arming it implies recovery.
            if recovery is False:
                raise ValueError(
                    "control=... requires the recovery stack; drop "
                    "recovery=False (or pass a RecoveryConfig)"
                )
            if recovery is None:
                recovery = True
        if recovery is True:
            recovery = RecoveryConfig()
        elif recovery is False:
            recovery = None
        self.recovery: Optional[RecoveryConfig] = recovery
        if reliability is True:
            reliability = ReliabilityConfig()
        elif reliability is False:
            reliability = None
        self._reliability_config: Optional[ReliabilityConfig] = reliability
        self.config = SessionConfig(
            mechanism=mechanism,
            n_hosts=len(self.cluster.hosts),
            seed=seed,
            trace=trace,
            default_route=default_route,
            scheduler=_policy_name(scheduler),
            faults=faults or FaultPlan(),
            recovery=recovery is not None,
            reliability=reliability is not None,
            control=control is not None,
        )
        self.faults = self.config.faults
        self.vm = _SYSTEMS[mechanism](self.cluster, default_route=default_route)
        #: Stage policy applied to every coordinator this session wires.
        #: Defaults to retry-everything when faults are armed, and to the
        #: bare (fault-free, zero-overhead) policy otherwise.
        self.policy = policy or (
            StagePolicy.resilient() if self.faults else StagePolicy()
        )
        self.injector: Optional[FaultInjector] = None
        if self.faults:
            self.injector = FaultInjector(self.cluster, self.faults).install()
        #: Reliable transport (sequencing/acks/retransmit) over the
        #: interhost seam — None unless ``reliability=`` was given.
        self.reliability: Optional[ReliabilityLayer] = None
        if self._reliability_config is not None:
            self.reliability = ReliabilityLayer(
                self.vm, self._reliability_config
            ).install()
        self._coordinators: List[Any] = []
        mig = getattr(self.vm, "migration", None)
        if mig is not None:
            self._wire_coordinator(mig)
        self._scheduler: Optional[GlobalScheduler] = None
        # Recovery stack (detector + coordinator) goes on last so the
        # fence wraps the injector at the network seam.
        self.detector: Optional[FailureDetector] = None
        self.coordinator: Optional[RecoveryCoordinator] = None
        self.checkpoints: Optional[CheckpointEngine] = None
        if self.recovery is not None:
            # The controller machine runs the detector.  Without a
            # control plane that is host 0, assumed survivable like the
            # paper's GS; with one it is the configured controller host
            # — and very much mortal.
            if self._control_config is not None:
                home = self.cluster.host(self._control_config.controller_host)
            else:
                home = self.cluster.hosts[0]
            self.detector = FailureDetector(
                self.vm, home, self.recovery.heartbeat
            )
            if isinstance(self.vm, MpvmSystem):
                self.checkpoints = CheckpointEngine(
                    self.vm,
                    period_s=self.recovery.checkpoint_period_s,
                    store_host=home,
                )
            self.coordinator = RecoveryCoordinator(
                self.vm,
                self.detector,
                engine=self.checkpoints,
                destination_picker=self._recovery_pick,
                partition_grace_s=self.recovery.partition_grace_s,
            )
            self.coordinator.install()
            # Every migration coordinator's transaction log learns about
            # fences, so exactly-once verification can reject commits
            # into hosts that were fenced first.
            for c in self._coordinators:
                txns = getattr(c, "txns", None)
                if txns is not None:
                    self.coordinator.txn_logs.append(txns)
        #: Crash-tolerant control plane — ``None`` unless ``control=``
        #: was given.  Built after the recovery stack so a takeover can
        #: re-arm the detector and replay fences from the control log.
        self.control: Optional[ControlPlane] = None
        if self._control_config is not None:
            assert self.detector is not None and self.coordinator is not None
            self.control = ControlPlane(
                system=self.vm,
                detector=self.detector,
                recovery=self.coordinator,
                config=self._control_config,
            ).arm()
            self._check_controller_draws()
            for c in self._coordinators:
                self.control.attach_coordinator(c)
            if self.mechanism in ("mpvm", "upvm"):
                # Bind the GS now so every command the session ever
                # issues is epoch-stamped, from the first one.
                _ = self.scheduler

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_scenario(
        cls,
        spec: Any,
        *,
        instance: Any = None,
        trace: bool = True,
    ) -> "Session":
        """Wire a whole session from a declarative scenario cell.

        ``spec`` is a :class:`repro.scenarios.ScenarioSpec`; its fleet
        shape becomes the cluster (per-host speeds included), its fault
        schedule and network profile become the fault plan, and the
        network/fault axes decide whether the reliability and recovery
        layers are armed.  Pass a pre-built
        :class:`repro.scenarios.ScenarioInstance` as ``instance`` to
        skip re-materialising (the materialisation is deterministic, so
        this is only an optimisation).  The arrival process and the
        application are the runner's business
        (:func:`repro.scenarios.run_cell`), not the session's.
        """
        from .scenarios.generator import materialize

        inst = instance if instance is not None else materialize(spec)
        hosts = [
            HostSpec(name, cpu_mflops=mflops) for name, mflops in inst.host_specs
        ]
        return cls(
            mechanism=spec.mechanism,
            hosts=hosts,
            seed=spec.seed,
            trace=trace,
            scheduler=getattr(spec, "scheduler", "greedy"),
            faults=inst.plan if inst.plan else None,
            reliability=inst.reliability,
            recovery=inst.recovery,
            control=getattr(inst, "control", False),
        )

    # -- wiring ----------------------------------------------------------------
    def _wire_coordinator(self, coordinator: Any) -> None:
        coordinator.policy = self.policy
        if self.injector is not None:
            coordinator.injector = self.injector
        self._coordinators.append(coordinator)
        txns = getattr(coordinator, "txns", None)
        recovery = getattr(self, "coordinator", None)
        if txns is not None and recovery is not None:
            recovery.txn_logs.append(txns)
        control = getattr(self, "control", None)
        if control is not None:
            control.attach_coordinator(coordinator)

    @property
    def scheduler(self) -> GlobalScheduler:
        """The GS over this session's migration client (built lazily)."""
        if self._scheduler is None:
            if self.mechanism == "adm":
                raise RuntimeError(
                    "an ADM session's migration client is the application: "
                    "build the app against session.vm, then session.adopt(app)"
                )
            if self.mechanism == "pvm":
                raise RuntimeError("plain PVM has no migration client")
            self._scheduler = GlobalScheduler(
                self.cluster, self.vm, scheduler=self._scheduler_spec
            )
            self._wire_scheduler(self._scheduler)
        return self._scheduler

    def _wire_scheduler(self, scheduler: GlobalScheduler) -> None:
        """Partition awareness: the GS never places onto a host the
        recovery layer currently considers unreachable-but-alive."""
        if self.coordinator is not None:
            scheduler.unreachable_provider = self.coordinator.unreachable_hosts
        control = getattr(self, "control", None)
        if control is not None:
            control.attach_scheduler(scheduler)

    def _recovery_pick(self, exclude: Tuple[str, ...]) -> Optional[Host]:
        """Restart placement via the GS ranking when a GS exists.

        Falls back to ``None`` (the coordinator then scans for the
        first compatible survivor) for sessions that never built a GS —
        plain PVM, or an ADM session before :meth:`adopt`.
        """
        if self._scheduler is None and self.mechanism in ("mpvm", "upvm"):
            _ = self.scheduler  # build it lazily
        if self._scheduler is not None:
            return self._scheduler.pick_destination(exclude=exclude)
        return None

    def protect(self, task: Any) -> Any:
        """Checkpoint-protect a task so a host crash can restart it.

        Only meaningful on a recovery-armed MPVM session (the engine
        replicates images to the GS machine).  Returns the writer
        process.
        """
        if self.checkpoints is None:
            raise RuntimeError(
                "protect() needs a recovery-armed mpvm session "
                "(Session(mechanism='mpvm', recovery=True))"
            )
        assert self.recovery is not None
        return self.checkpoints.protect(
            task, initial=self.recovery.checkpoint_initial
        )

    def adopt(self, app: Any) -> GlobalScheduler:
        """Wire an ADM application into the session; returns its GS.

        Arms the session's injector and stage policy on the app's
        coordinator, switches the app's consensus loops to the
        loss-tolerant path when faults are active, and builds the GS
        over the app's client.
        """
        client = getattr(app, "client", app)
        coordinator = getattr(client, "coordinator", None)
        if coordinator is not None:
            self._wire_coordinator(coordinator)
        if self.faults and hasattr(app, "fault_tolerant"):
            app.fault_tolerant = True
        self._scheduler = GlobalScheduler(
            self.cluster, client, scheduler=self._scheduler_spec
        )
        self._wire_scheduler(self._scheduler)
        return self._scheduler

    def _check_controller_draws(self) -> None:
        """Plan-vs-plane cross-check: the succession list must be deep
        enough to absorb every scheduled controller crash (nested
        crashes each consume one standby)."""
        assert self.control is not None
        depth = len(self.control.replicas) - 1
        seen = 0
        for i, spec in enumerate(self.faults.faults):
            if isinstance(spec, ControllerCrash):
                seen += 1
                if seen > depth:
                    raise ValueError(
                        f"fault #{i} (ControllerCrash): {seen} controller "
                        f"crashes scheduled but the control plane has only "
                        f"{depth} standbys; raise ControlConfig.standbys or "
                        "drop the draw"
                    )

    # -- running ----------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Drive the simulation (to ``until`` seconds, or until idle).

        A recovery-armed session gossips heartbeats forever, so the
        event heap never empties: pass an explicit ``until`` (or
        ``session.detector.stop()`` first) to avoid running without
        bound.
        """
        if until is None and self.detector is not None and self.detector.enabled:
            raise ValueError(
                "run(until=None) would never return while the failure "
                "detector is gossiping; pass until=... or call "
                "session.detector.stop() first"
            )
        if until is None and self.control is not None and self.control.replicating:
            raise ValueError(
                "run(until=None) would never return while the replicated "
                "control plane renews leases; pass until=..."
            )
        self.cluster.run(until=until)

    # -- convenience passthroughs ------------------------------------------------
    @property
    def sim(self):
        return self.cluster.sim

    @property
    def now(self) -> float:
        return self.cluster.sim.now

    @property
    def tracer(self):
        return self.cluster.tracer

    def host(self, name_or_index):
        return self.cluster.host(name_or_index)

    def migrate(self, unit: Any, dst) -> Any:
        """GS-tracked single migration (completion event)."""
        return self.scheduler.migrate(unit, dst)

    def reclaim(self, host) -> List[Any]:
        """GS-tracked vacate of every unit on ``host``."""
        return self.scheduler.reclaim(host)

    # -- results ------------------------------------------------------------------
    @property
    def migrations(self) -> List[MigrationStats]:
        """Completed migration stats across every wired coordinator."""
        out: List[MigrationStats] = []
        for c in self._coordinators:
            out.extend(c.stats)
        return out

    @property
    def abandoned(self) -> List[MigrationStats]:
        """Migrations that exhausted every recovery avenue."""
        out: List[MigrationStats] = []
        for c in self._coordinators:
            out.extend(c.aborted)
        return out

    @property
    def recovery_records(self) -> List[Any]:
        """Per-host-death recovery records (empty unless recovery armed)."""
        return list(self.coordinator.records) if self.coordinator else []

    def outcomes(self) -> dict:
        """Histogram of per-migration outcomes (ok/retried/rerouted/abandoned)."""
        counts: dict = {}
        for s in self.migrations + self.abandoned:
            counts[s.outcome] = counts.get(s.outcome, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (
            f"<Session {self.mechanism} hosts={len(self.cluster.hosts)}"
            f" seed={self.config.seed}"
            + (f" faults={len(self.faults.faults)}" if self.faults else "")
            + ">"
        )
