"""Address-space model for simulated Unix processes and ULPs.

MPVM migrates a process by transferring its *writable* memory (data,
heap, stack) plus the register context; the text segment is re-created by
exec'ing the same binary on the destination ("skeleton" process).  UPVM
carves one process's address space into per-ULP regions whose virtual
addresses are reserved identically in every process of the application so
that pointers survive migration without fix-up (paper Figure 2).

Segments track *sizes* (which determine transfer cost) and optionally
carry real payload (numpy arrays / bytes) for tests that verify content
integrity across a migration.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

__all__ = ["Segment", "AddressSpace", "PAGE"]

PAGE = 4096


def page_align(nbytes: int) -> int:
    """Round up to a whole number of pages."""
    return (nbytes + PAGE - 1) // PAGE * PAGE


class Segment:
    """A contiguous region of virtual memory."""

    def __init__(
        self,
        name: str,
        start: int,
        size: int,
        writable: bool = True,
        payload: Optional[object] = None,
    ) -> None:
        if start % PAGE:
            raise ValueError(f"segment start {start:#x} is not page-aligned")
        if size < 0:
            raise ValueError("segment size must be non-negative")
        self.name = name
        self.start = start
        self.size = size
        self.writable = writable
        #: Optional real contents (bytes / numpy array) for integrity tests.
        self.payload = payload

    @property
    def end(self) -> int:
        return self.start + self.size

    def overlaps(self, other: "Segment") -> bool:
        return self.start < other.end and other.start < self.end

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def grow(self, nbytes: int) -> None:
        """Extend the segment (sbrk / stack growth)."""
        if nbytes < 0 and self.size + nbytes < 0:
            raise ValueError("cannot shrink segment below zero")
        self.size += nbytes

    def clone(self) -> "Segment":
        return Segment(self.name, self.start, self.size, self.writable, self.payload)

    def __repr__(self) -> str:
        mode = "rw" if self.writable else "r-"
        return f"<Segment {self.name} {self.start:#010x}+{self.size:#x} {mode}>"


class AddressSpace:
    """An ordered collection of non-overlapping segments."""

    #: Conventional HP-UX-ish layout bases used by default.
    TEXT_BASE = 0x0000_1000
    DATA_BASE = 0x4000_0000
    STACK_TOP = 0x7FFF_F000

    def __init__(self) -> None:
        self._segments: Dict[str, Segment] = {}

    @classmethod
    def conventional(
        cls,
        text_bytes: int = 256 * 1024,
        data_bytes: int = 32 * 1024,
        heap_bytes: int = 16 * 1024,
        stack_bytes: int = 16 * 1024,
    ) -> "AddressSpace":
        """The classic text/data/heap/stack process image."""
        space = cls()
        space.map(Segment("text", cls.TEXT_BASE, page_align(text_bytes), writable=False))
        data_start = cls.DATA_BASE
        space.map(Segment("data", data_start, page_align(data_bytes)))
        heap_start = data_start + page_align(data_bytes)
        space.map(Segment("heap", heap_start, page_align(heap_bytes)))
        stack_size = page_align(stack_bytes)
        space.map(Segment("stack", cls.STACK_TOP - stack_size, stack_size))
        return space

    def map(self, segment: Segment) -> Segment:
        """Insert a segment, refusing overlaps and duplicate names."""
        if segment.name in self._segments:
            raise ValueError(f"segment {segment.name!r} already mapped")
        for other in self._segments.values():
            if segment.overlaps(other):
                raise ValueError(f"{segment!r} overlaps {other!r}")
        self._segments[segment.name] = segment
        return segment

    def unmap(self, name: str) -> Segment:
        return self._segments.pop(name)

    def get(self, name: str) -> Segment:
        return self._segments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._segments

    def __iter__(self) -> Iterator[Segment]:
        return iter(sorted(self._segments.values(), key=lambda s: s.start))

    def segments(self) -> List[Segment]:
        return list(self)

    def segment_at(self, addr: int) -> Optional[Segment]:
        for seg in self._segments.values():
            if seg.contains(addr):
                return seg
        return None

    @property
    def writable_bytes(self) -> int:
        """Total bytes MPVM must ship when migrating this process."""
        return sum(s.size for s in self._segments.values() if s.writable)

    @property
    def total_bytes(self) -> int:
        return sum(s.size for s in self._segments.values())

    def clone(self) -> "AddressSpace":
        out = AddressSpace()
        for seg in self._segments.values():
            out.map(seg.clone())
        return out

    def layout(self) -> str:
        """Human-readable map (used by the Figure 2 bench)."""
        lines = [f"{s.start:#010x}-{s.end:#010x} {'rw' if s.writable else 'r-'} {s.name}"
                 for s in self]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<AddressSpace {len(self._segments)} segments, {self.total_bytes:#x} bytes>"
