"""Simulated Unix process/OS abstractions (processes, memory, signals)."""

from .memory import PAGE, AddressSpace, Segment, page_align
from .process import ProcState, SimProcess
from .signals import ProcessKilled, Sig, SignalRecord

__all__ = [
    "AddressSpace",
    "PAGE",
    "ProcState",
    "ProcessKilled",
    "Segment",
    "Sig",
    "SignalRecord",
    "SimProcess",
    "page_align",
]
