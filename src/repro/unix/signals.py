"""Unix-style signal numbers and delivery records.

MPVM drives migration from *outside* the application through signal
handlers that the library transparently links in (paper §2.1 stage 4:
"the protocol is done by mpvmd and by signal handlers that are
transparently linked into the application").  We model the subset of
signal machinery that matters: asynchronous delivery, per-process handler
tables, and the documented transparency limitation that *pending* signals
are lost across a migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any

__all__ = ["Sig", "SignalRecord", "ProcessKilled"]


class ProcessKilled(Exception):
    """Raised inside a process body when the process is killed.

    Caught by the process wrapper: a killed process terminates cleanly
    with exit code -9 instead of crashing the simulation.
    """


class Sig(IntEnum):
    """The signals the reproduction uses."""

    SIGKILL = 9
    SIGUSR1 = 30  # HP-UX numbering
    SIGUSR2 = 31
    #: The out-of-band migration request MPVM delivers to a task.
    SIGMIGRATE = 44
    #: UPVM's "scheduler poke" used to interrupt a running ULP.
    SIGVTALRM = 20


@dataclass
class SignalRecord:
    """One delivered (or pending) signal."""

    signo: Sig
    sender: str
    payload: Any = None
    delivered_at: float = -1.0

    def __repr__(self) -> str:
        return f"<Signal {self.signo.name} from {self.sender}>"
