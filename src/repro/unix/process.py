"""Simulated Unix processes.

A :class:`SimProcess` is the OS-level container the PVM layers build on:
it owns an address space, a register context, a signal-handler table, and
(once started) the kernel coroutine that executes its body.  The paper's
process-state definition (§2.1) — "not only its data, heap, stack and
register context, but also its state in relation to the entire parallel
application" — maps directly onto this class plus the message state
handled by the MPVM/UPVM protocol engines.
"""

from __future__ import annotations

from enum import Enum
from itertools import count
from typing import Any, Callable, Dict, List, Optional

from ..hw.host import Host
from ..sim import Process, Simulator
from .memory import AddressSpace
from .signals import ProcessKilled, Sig, SignalRecord

__all__ = ["ProcState", "SimProcess"]

_pid_counter = count(100)


class ProcState(Enum):
    NEW = "new"
    RUNNING = "running"
    BLOCKED = "blocked"
    MIGRATING = "migrating"
    EXITED = "exited"


class SimProcess:
    """One Unix process image living on (exactly one) host at a time."""

    def __init__(
        self,
        host: Host,
        name: str,
        space: Optional[AddressSpace] = None,
        executable: str = "a.out",
    ) -> None:
        self.sim: Simulator = host.sim
        self.host = host
        self.name = name
        self.executable = executable
        self.pid = next(_pid_counter)
        self.space = space or AddressSpace.conventional()
        #: Simulated register context; opaque to everyone but the
        #: migration engine, which captures and restores it.
        self.registers: Dict[str, Any] = {"pc": 0, "sp": self.space.get("stack").end}
        self.signal_handlers: Dict[Sig, Callable[[SignalRecord], None]] = {}
        self.pending_signals: List[SignalRecord] = []
        self.state = ProcState.NEW
        self.exit_code: Optional[int] = None
        self.coroutine: Optional[Process] = None
        #: Bytes currently charged against the host's memory budget.
        self._mem_charged = self.space.writable_bytes
        host.mem_alloc(self._mem_charged)

    # -- lifecycle ------------------------------------------------------------
    def start(self, body, name: Optional[str] = None) -> Process:
        """Attach and launch the process body (a generator)."""
        if self.coroutine is not None:
            raise RuntimeError(f"{self} already started")
        self.state = ProcState.RUNNING
        self.coroutine = self.sim.process(
            self._wrap(body), name=name or f"{self.name}[{self.pid}]"
        )
        return self.coroutine

    def _wrap(self, body):
        try:
            result = yield from body
        except ProcessKilled:
            self._exit(-9)
            return None
        finally:
            if self.state is not ProcState.EXITED:
                self._exit(0)
        return result

    def _exit(self, code: int) -> None:
        self.state = ProcState.EXITED
        self.exit_code = code
        self.host.mem_free(self._mem_charged)
        self._mem_charged = 0

    def exit(self, code: int = 0) -> None:
        """Voluntary termination bookkeeping (called from the body)."""
        if self.state is not ProcState.EXITED:
            self._exit(code)

    def kill(self) -> None:
        """SIGKILL: tear the process down immediately."""
        if self.state is ProcState.EXITED:
            return
        if self.coroutine is not None and self.coroutine.is_alive:
            self.coroutine.interrupt(SignalRecord(Sig.SIGKILL, "kernel"))
        else:
            self._exit(-9)

    @property
    def alive(self) -> bool:
        return self.state is not ProcState.EXITED

    # -- signals ---------------------------------------------------------------
    def install_handler(self, signo: Sig, fn: Callable[[SignalRecord], None]) -> None:
        self.signal_handlers[signo] = fn

    def deliver_signal(self, record: SignalRecord) -> None:
        """Deliver a signal: run the handler if installed, else queue it.

        Handlers run synchronously (they are bookkeeping callbacks);
        anything that must *suspend* the process goes through
        ``interrupt_body``.
        """
        record.delivered_at = self.sim.now
        handler = self.signal_handlers.get(record.signo)
        if handler is not None:
            handler(record)
        else:
            self.pending_signals.append(record)

    def interrupt_body(self, cause: Any) -> None:
        """Asynchronously interrupt the process body (signal semantics)."""
        if self.coroutine is None or not self.coroutine.is_alive:
            raise RuntimeError(f"cannot interrupt {self}: not running")
        self.coroutine.interrupt(cause)

    # -- relocation (used by the MPVM migration engine) -------------------------
    def grow_heap(self, nbytes: int) -> None:
        """sbrk: extend the heap, charging the host's memory budget."""
        self.space.get("heap").grow(nbytes)
        self.host.mem_alloc(nbytes)
        self._mem_charged += nbytes

    def relocate_to(self, dest: Host) -> None:
        """Accounting for a completed migration: the image now lives on
        ``dest``.  Pending signals are lost — the documented MPVM
        transparency limitation (§3.2.1)."""
        self.host.mem_free(self._mem_charged)
        self._mem_charged = self.space.writable_bytes
        dest.mem_alloc(self._mem_charged)
        self.host = dest
        self.pending_signals.clear()

    def __repr__(self) -> str:
        return f"<SimProcess {self.name} pid={self.pid} on {self.host.name} {self.state.value}>"
