"""The UPVM user library: ULP contexts and the application container.

ULP programs look exactly like PVM task programs — message passing by
convention, SPMD style — but address each other by *ULP id* (0..N-1).
Same-process messages are handed off zero-copy (the optimization that
makes UPVM *faster* than plain PVM in the paper's Table 3); remote
messages ride pvm messages with a small extra routing header (the source
of UPVM's "marginally slower remote communication").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from ..pvm.message import MessageBuffer
from ..sim import Event, Interrupt
from ..pvm.context import Freeze
from .address_space import UlpAddressMap
from .process import TAG_ULP_WRAP, UpvmProcess
from .ulp import ULP_ANY, Ulp, UlpMessage, UlpState

__all__ = ["UlpContext", "UpvmApp"]

UlpProgram = Callable[["UlpContext"], Any]


class UlpContext:
    """The programming interface a ULP body receives."""

    def __init__(self, app: "UpvmApp", ulp: Ulp) -> None:
        self.app = app
        self.ulp = ulp

    # -- identity ------------------------------------------------------------
    @property
    def me(self) -> int:
        return self.ulp.ulp_id

    @property
    def n_ulps(self) -> int:
        return self.app.n_ulps

    @property
    def host(self):
        return self.ulp.host

    @property
    def sim(self):
        return self.ulp.sim

    @property
    def now(self) -> float:
        return self.ulp.sim.now

    @property
    def params(self):
        return self.app.system.params

    def initsend(self) -> MessageBuffer:
        return MessageBuffer()

    # -- interrupts ---------------------------------------------------------------
    def handle_interrupt(self, intr: Interrupt) -> Generator[Event, Any, None]:
        """Re-entrant freeze handling (see PvmContext.handle_interrupt)."""
        cause = intr.cause
        if not isinstance(cause, Freeze):
            raise intr
        waits = [cause.resume_event]
        while waits:
            target = waits[-1]
            try:
                yield target
                waits.pop()
            except Interrupt as nested:
                if not isinstance(nested.cause, Freeze):
                    raise
                waits.append(nested.cause.resume_event)

    # -- send ------------------------------------------------------------------------
    def send(
        self, dst_ulp: int, tag: int, buf: Optional[MessageBuffer] = None
    ) -> Generator[Event, Any, UlpMessage]:
        """Send ``buf`` to another ULP.

        Local (same-process) destination: zero-copy buffer hand-off.
        Remote destination: wrapped into a pvm message via the hosting
        process, with the UPVM routing header prepended.
        """
        buf = buf if buf is not None else MessageBuffer()
        app = self.app
        params = self.params
        msg = UlpMessage(self.me, dst_ulp, tag, buf, sent_at=self.now)
        app.note_sent(msg)
        dst_proc = app.location[dst_ulp]
        if dst_proc is self.ulp.process:
            self.ulp.in_library = True
            try:
                yield self.host.busy_seconds(
                    params.upvm_local_handoff_s, label="ulp-handoff"
                )
            finally:
                self.ulp.in_library = False
            msg.local = True
            app.ulps[dst_ulp].deliver(msg)
            return msg
        outer = self._wrap(msg)
        self.ulp.in_library = True
        try:
            yield from self.ulp.process.context.send(  # type: ignore[attr-defined]
                dst_proc.tid, TAG_ULP_WRAP, outer
            )
        finally:
            self.ulp.in_library = False
        return msg

    def mcast(
        self, dst_ulps: Iterable[int], tag: int, buf: Optional[MessageBuffer] = None
    ) -> Generator[Event, Any, List[UlpMessage]]:
        buf = buf if buf is not None else MessageBuffer()
        out = []
        for dst in dst_ulps:
            msg = yield from self.send(dst, tag, buf.fork())
            out.append(msg)
        return out

    def _wrap(self, msg: UlpMessage) -> MessageBuffer:
        params = self.params
        outer = MessageBuffer()
        outer.pkint([msg.src_ulp, msg.dst_ulp, msg.tag])
        outer.pkopaque(params.upvm_remote_header_bytes, "upvm-header")
        outer.pkbuffer(msg.buffer)
        return outer

    # -- receive -----------------------------------------------------------------------
    def recv(
        self, src: int = ULP_ANY, tag: int = ULP_ANY
    ) -> Generator[Event, Any, UlpMessage]:
        """Blocking receive; de-schedules the ULP while it waits."""
        pred = lambda m: m.matches(src, tag)  # noqa: E731
        sched = self.ulp.process.scheduler
        if sched.current is self.ulp:
            sched.current = self.ulp  # stays "last run"; token already free
        msg: Optional[UlpMessage] = None
        while msg is None:
            get_ev = self.ulp.queue.get(pred)
            try:
                msg = yield get_ev
            except Interrupt as intr:
                if not self.ulp.queue.cancel(get_ev) and get_ev.triggered:
                    msg = get_ev.value
                    yield from self.handle_interrupt(intr)
                else:
                    yield from self.handle_interrupt(intr)
        if not msg.local:
            # Remote messages pay an unpack copy; hand-offs do not.
            self.ulp.in_library = True
            try:
                yield self.host.busy_seconds(
                    msg.nbytes / self.params.memcpy_bytes_per_s
                    + self.params.syscall_s,
                    label="ulp-unpack",
                )
            finally:
                self.ulp.in_library = False
        return msg

    def nrecv(self, src: int = ULP_ANY, tag: int = ULP_ANY) -> Optional[UlpMessage]:
        """Non-blocking receive (no cost model: a queue peek)."""
        pred = lambda m: m.matches(src, tag)  # noqa: E731
        item = self.ulp.queue.peek(pred)
        if item is None:
            return None
        ev = self.ulp.queue.get(pred)
        assert ev.triggered
        return ev.value

    def probe(self, src: int = ULP_ANY, tag: int = ULP_ANY) -> bool:
        pred = lambda m: m.matches(src, tag)  # noqa: E731
        return self.ulp.queue.peek(pred) is not None

    # -- compute ------------------------------------------------------------------------
    def compute(self, flops: float, label: str = "compute") -> Generator[Event, Any, None]:
        """Run ``flops`` under the process's non-preemptive ULP scheduler."""
        remaining = float(flops)
        while remaining > 0:
            sched = self.ulp.process.scheduler  # re-read: may have migrated
            try:
                yield from sched.acquire(self.ulp)
            except Interrupt as intr:
                yield from self.handle_interrupt(intr)
                continue
            job = self.host.cpu.submit_job(remaining, label=label)
            try:
                yield job.event
                remaining = 0.0
                sched.release(self.ulp)
            except Interrupt as intr:
                remaining = self.host.cpu.cancel(job)
                sched.release(self.ulp, blocked=True)
                yield from self.handle_interrupt(intr)

    def sleep(self, seconds: float) -> Generator[Event, Any, None]:
        t_end = self.now + seconds
        while self.now < t_end:
            try:
                yield self.sim.timeout(t_end - self.now)
            except Interrupt as intr:
                yield from self.handle_interrupt(intr)

    def __repr__(self) -> str:
        return f"<UlpContext ulp{self.me} of {self.app.name}>"


class UpvmApp:
    """One SPMD application: N ULPs over one process per host."""

    def __init__(
        self,
        system,
        name: str,
        program: UlpProgram,
        n_ulps: int,
        hosts: List,
        placement: Optional[Dict[int, int]] = None,
        region_bytes: int = 4 * 1024 * 1024,
        base_state_bytes: int = 64 * 1024,
    ) -> None:
        """``placement`` maps ULP id -> process index (default: ULP *i*
        on process ``i % len(hosts)``)."""
        if n_ulps < 1:
            raise ValueError("need at least one ULP")
        self.system = system
        self.name = name
        self.program = program
        self.n_ulps = n_ulps
        self.address_map = UlpAddressMap(region_bytes=region_bytes)
        if n_ulps > self.address_map.capacity:
            raise MemoryError(
                f"{n_ulps} ULPs of {region_bytes} bytes exceed the process "
                f"address space (max {self.address_map.capacity}) — §3.2.2"
            )
        self.processes: List[UpvmProcess] = [
            system.create_upvm_process(system.cluster.host(h) if not hasattr(h, "cpu") else h, self)
            for h in hosts
        ]
        self.ulps: Dict[int, Ulp] = {}
        self.location: Dict[int, UpvmProcess] = {}
        self.results: Dict[int, Any] = {}
        self.unclaimed_messages: List = []
        self._inflight: Dict[int, int] = {}
        self._drain_waiters: Dict[int, List[Event]] = {}
        self._accepts: Dict[int, dict] = {}
        self._remaining = n_ulps
        #: Fires when every ULP body has returned.
        self.all_done: Event = Event(system.sim)
        for ulp_id in range(n_ulps):
            proc_idx = (placement or {}).get(ulp_id, ulp_id % len(self.processes))
            proc = self.processes[proc_idx]
            region = self.address_map.reserve(ulp_id)
            ulp = Ulp(ulp_id, region, proc, base_state_bytes=base_state_bytes)
            ulp.in_library = False
            proc.adopt(ulp)
            self.ulps[ulp_id] = ulp
            self.location[ulp_id] = proc
            ctx = UlpContext(self, ulp)
            ulp.context = ctx
            ulp.coroutine = system.sim.process(
                self._ulp_main(ulp, ctx), name=f"{name}:ulp{ulp_id}"
            )

    def _ulp_main(self, ulp: Ulp, ctx: UlpContext):
        try:
            result = yield from self.program(ctx)
        finally:
            ulp.state = UlpState.DONE
            self._remaining -= 1
            if self._remaining == 0 and not self.all_done.triggered:
                self.all_done.succeed(self.results)
        self.results[ulp.ulp_id] = result
        return result

    # -- residency / bookkeeping helpers -------------------------------------------
    def process_on(self, host) -> Optional[UpvmProcess]:
        for proc in self.processes:
            if proc.host is host:
                return proc
        return None

    def resident_map(self) -> Dict[int, str]:
        return {uid: proc.host.name for uid, proc in self.location.items()}

    # -- in-flight tracking (flush support) --------------------------------------------
    def note_sent(self, msg: UlpMessage) -> None:
        self._inflight[msg.dst_ulp] = self._inflight.get(msg.dst_ulp, 0) + 1

    def note_delivered(self, msg: UlpMessage) -> None:
        n = self._inflight.get(msg.dst_ulp, 0) - 1
        if n > 0:
            self._inflight[msg.dst_ulp] = n
            return
        self._inflight.pop(msg.dst_ulp, None)
        for ev in self._drain_waiters.pop(msg.dst_ulp, []):
            if not ev.triggered:
                ev.succeed()

    def when_drained(self, ulp_id: int) -> Event:
        ev = Event(self.system.sim)
        if self._inflight.get(ulp_id, 0) == 0:
            ev.succeed()
        else:
            self._drain_waiters.setdefault(ulp_id, []).append(ev)
        return ev

    # -- migration-state accept tracking ---------------------------------------------------
    def expect_state(self, ulp_id: int, total_chunks: int) -> Event:
        if ulp_id in self._accepts:
            from ..pvm.errors import PvmMigrationError

            raise PvmMigrationError(
                f"ulp{ulp_id} already has a state transfer in progress"
            )
        ev = Event(self.system.sim)
        self._accepts[ulp_id] = {"seen": set(), "total": total_chunks, "event": ev}
        if total_chunks == 0:
            ev.succeed()
        return ev

    def cancel_state(self, ulp_id: int) -> bool:
        """Drop accept tracking for an aborted transfer (abort path).

        Late-arriving chunks of the cancelled transfer are ignored by
        :meth:`note_state_chunk`, and a later re-migration of the same
        ULP may arm :meth:`expect_state` afresh.
        """
        return self._accepts.pop(ulp_id, None) is not None

    def note_state_chunk(self, proc: UpvmProcess, ulp_id: int, seq: int, total: int) -> None:
        entry = self._accepts.get(ulp_id)
        if entry is None:
            return
        entry["seen"].add(seq)
        if len(entry["seen"]) >= entry["total"]:
            self._accepts.pop(ulp_id, None)
            if not entry["event"].triggered:
                entry["event"].succeed()

    # -- forwarding ---------------------------------------------------------------------------
    def forward(self, ctx, umsg: UlpMessage):
        """Dispatcher found a non-resident addressee: pass it along."""
        dst_proc = self.location[umsg.dst_ulp]
        if dst_proc is ctx.task:
            self.ulps[umsg.dst_ulp].deliver(umsg)
            return
        outer = MessageBuffer()
        outer.pkint([umsg.src_ulp, umsg.dst_ulp, umsg.tag])
        outer.pkopaque(self.system.params.upvm_remote_header_bytes, "upvm-header")
        outer.pkbuffer(umsg.buffer)
        yield from ctx.send(dst_proc.tid, TAG_ULP_WRAP, outer)

    def unclaimed(self, proc: UpvmProcess, msg) -> None:
        self.unclaimed_messages.append((proc, msg))

    def __repr__(self) -> str:
        return f"<UpvmApp {self.name} ulps={self.n_ulps} procs={len(self.processes)}>"
