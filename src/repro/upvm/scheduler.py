"""The UPVM library-level ULP scheduler.

Many ULPs share one Unix process (one kernel schedulable entity); the
UPVM library multiplexes them *non-preemptively*: a ULP runs until it
blocks on a receive, at which point a runnable ULP — if any — is
scheduled (paper §2.2).  We model the mutual exclusion with a token and
charge the documented user-level context-switch cost whenever the
running ULP changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..sim import Resource
from .ulp import Ulp, UlpState

if TYPE_CHECKING:  # pragma: no cover
    from .process import UpvmProcess

__all__ = ["UlpScheduler"]


class UlpScheduler:
    """Run-to-block scheduler for the ULPs of one process."""

    def __init__(self, process: "UpvmProcess") -> None:
        self.process = process
        self.token = Resource(process.sim, capacity=1)
        self.current: Optional[Ulp] = None
        self.switches = 0
        #: Ready-queue bookkeeping (metadata; the token enforces order).
        self.ready: List[Ulp] = []

    def acquire(self, ulp: Ulp):
        """Generator: become the running ULP (pays switch cost on change).

        Interrupt-safe: if the waiting ULP is frozen for migration the
        token is not leaked — the request is withdrawn (or immediately
        released if it was granted in the same instant) and the
        interrupt propagates to the caller.
        """
        from ..sim import Interrupt

        ulp.state = UlpState.READY
        if ulp not in self.ready:
            self.ready.append(ulp)
        req = self.token.acquire()
        try:
            yield req
        except Interrupt:
            if not self.token.cancel(req):
                self.token.release()
            raise
        if ulp in self.ready:
            self.ready.remove(ulp)
        if self.current is not ulp:
            self.switches += 1
            params = self.process.system.params
            try:
                yield self.process.host.busy_seconds(
                    params.ulp_context_switch_s, label="ulp-switch"
                )
            except Interrupt:
                self.token.release()
                raise
            self.current = ulp
        ulp.state = UlpState.RUNNING

    def release(self, ulp: Ulp, blocked: bool = False) -> None:
        """The running ULP yields the process (block or voluntary).

        Never clobbers MIGRATING/DONE: a ULP frozen mid-compute releases
        the token on its way into the freeze, and overwriting the
        migration engine's state marker here would let a second,
        concurrent migration of the same ULP start (and corrupt the
        state-transfer accounting).
        """
        if ulp.state not in (UlpState.MIGRATING, UlpState.DONE):
            ulp.state = UlpState.BLOCKED if blocked else UlpState.READY
        self.token.release()

    def enqueue(self, ulp: Ulp) -> None:
        """Restart stage of a migration: "the ULP is placed in the
        appropriate scheduler queue so that it will eventually execute"."""
        ulp.state = UlpState.READY
        if ulp not in self.ready:
            self.ready.append(ulp)

    def forget(self, ulp: Ulp) -> None:
        """Remove a migrated-away ULP from local bookkeeping."""
        if ulp in self.ready:
            self.ready.remove(ulp)
        if self.current is ulp:
            self.current = None

    def __repr__(self) -> str:
        cur = self.current.ulp_id if self.current else None
        return f"<UlpScheduler of {self.process.name} current={cur} switches={self.switches}>"
