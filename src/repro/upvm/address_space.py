"""Global ULP address map (paper Figure 2).

Each ULP owns a private data/heap/stack region inside its host process's
virtual address space.  To make migration pointer-safe, the mapping
ULP → virtual-address region is *unique across all processes of the
application*: if ULP4 occupies region V1 in one process, V1 is reserved
for ULP4 in every other process too (even where ULP4 is not resident).

A direct consequence — and a documented UPVM limitation (§3.2.2) — is
that the number of ULPs is capped by how many regions fit in one
process's virtual address space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..unix.memory import PAGE, page_align

__all__ = ["UlpRegion", "UlpAddressMap"]


@dataclass(frozen=True)
class UlpRegion:
    """The reserved virtual-address window of one ULP."""

    ulp_id: int
    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size

    def __str__(self) -> str:
        return f"ULP{self.ulp_id}: {self.start:#010x}-{self.end:#010x} ({self.size // 1024} KB)"


class UlpAddressMap:
    """Deterministic, application-global ULP region allocator."""

    def __init__(
        self,
        base: int = 0x5000_0000,
        limit: int = 0x7800_0000,
        region_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        if base % PAGE or limit % PAGE:
            raise ValueError("base/limit must be page aligned")
        if region_bytes <= 0:
            raise ValueError("region size must be positive")
        self.base = base
        self.limit = limit
        self.region_bytes = page_align(region_bytes)
        self._regions: Dict[int, UlpRegion] = {}

    @property
    def capacity(self) -> int:
        """How many ULPs fit in the reserved address window."""
        return (self.limit - self.base) // self.region_bytes

    def reserve(self, ulp_id: int) -> UlpRegion:
        """Reserve (or return the existing) region for ``ulp_id``.

        The address depends only on the ULP id, so every process of the
        application computes the identical mapping.
        """
        if ulp_id < 0:
            raise ValueError("ulp_id must be non-negative")
        region = self._regions.get(ulp_id)
        if region is not None:
            return region
        start = self.base + ulp_id * self.region_bytes
        if start + self.region_bytes > self.limit:
            raise MemoryError(
                f"address space exhausted: ULP{ulp_id} does not fit "
                f"({self.capacity} regions of {self.region_bytes:#x} bytes max)"
            )
        region = UlpRegion(ulp_id, start, self.region_bytes)
        self._regions[ulp_id] = region
        return region

    def region_of(self, ulp_id: int) -> UlpRegion:
        return self._regions[ulp_id]

    def regions(self) -> List[UlpRegion]:
        return [self._regions[k] for k in sorted(self._regions)]

    def layout(self, residency: Dict[int, str] | None = None) -> str:
        """Render the map as in Figure 2 (optionally with residency)."""
        lines = []
        for region in self.regions():
            where = ""
            if residency is not None:
                where = f"  resident-on={residency.get(region.ulp_id, '-')}"
            lines.append(f"{region}{where}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._regions)
