"""UPVM — light-weight, migratable User Level Processes over PVM (§2.2)."""

from .address_space import UlpAddressMap, UlpRegion
from .library import UlpContext, UpvmApp
from .migration import MigrationStats, UlpMigrationAdapter
from .process import TAG_ULP_STATE, TAG_ULP_WRAP, UpvmProcess
from .scheduler import UlpScheduler
from .system import UpvmSystem
from .ulp import ULP_ANY, Ulp, UlpMessage, UlpState

__all__ = [
    "TAG_ULP_STATE",
    "TAG_ULP_WRAP",
    "ULP_ANY",
    "Ulp",
    "UlpAddressMap",
    "UlpContext",
    "MigrationStats",
    "UlpMessage",
    "UlpMigrationAdapter",
    "UlpRegion",
    "UlpScheduler",
    "UlpState",
    "UpvmApp",
    "UpvmProcess",
    "UpvmSystem",
]
