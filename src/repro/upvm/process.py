"""UPVM processes: the Unix-process containers ULPs live in.

One UPVM process runs per allocated host ("the efficient choice of one
process per allocated processor", §5.0).  Its main loop — the
*dispatcher* — is a PVM task that demultiplexes incoming pvm messages:
wrapped ULP messages go to the addressed ULP's queue, and incoming
ULP-state chunks are run through the (deliberately unoptimized) accept
mechanism that dominates UPVM's migration cost in Table 4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..pvm.task import Task
from ..pvm.tid import tid_str
from .scheduler import UlpScheduler
from .ulp import Ulp, UlpMessage

if TYPE_CHECKING:  # pragma: no cover
    from .library import UpvmApp

__all__ = ["UpvmProcess", "TAG_ULP_WRAP", "TAG_ULP_STATE"]

#: pvm tag carrying a wrapped inter-ULP message.
TAG_ULP_WRAP = 0x55A0
#: pvm tag carrying a chunk of migrating-ULP state.
TAG_ULP_STATE = 0x55A1


class UpvmProcess(Task):
    """A PVM task hosting several ULPs and their scheduler."""

    def __init__(self, system, host, tid, app: "UpvmApp") -> None:
        super().__init__(
            system, host, tid,
            executable=f"upvm:{app.name}", program=None, parent_tid=None,
        )
        self.app = app
        self.scheduler = UlpScheduler(self)
        self.resident: Dict[int, Ulp] = {}

    # -- residency --------------------------------------------------------------
    def adopt(self, ulp: Ulp) -> None:
        """The ULP now lives here (initial placement or migration restart)."""
        self.resident[ulp.ulp_id] = ulp
        ulp.process = self

    def evict(self, ulp: Ulp) -> None:
        self.resident.pop(ulp.ulp_id, None)
        self.scheduler.forget(ulp)

    @property
    def ulp_state_bytes(self) -> int:
        return sum(u.state_bytes for u in self.resident.values())

    # -- the dispatcher -----------------------------------------------------------
    def dispatcher(self, ctx):
        """Process main loop (a PVM task body)."""
        params = self.system.params
        while True:
            msg = yield from ctx.recv()
            if msg.tag == TAG_ULP_WRAP:
                hdr = msg.buffer.upkint()
                src_ulp, dst_ulp, utag = int(hdr[0]), int(hdr[1]), int(hdr[2])
                msg.buffer.upkopaque()  # the UPVM routing header
                inner = msg.buffer.upkbuffer()
                umsg = UlpMessage(src_ulp, dst_ulp, utag, inner, sent_at=msg.sent_at)
                target = self.resident.get(dst_ulp)
                if target is None:
                    # The ULP moved on; forward to its current location
                    # (post-flush senders go to the new host directly, so
                    # this only catches messages already in flight).
                    yield from self.app.forward(ctx, umsg)
                else:
                    target.deliver(umsg)
            elif msg.tag == TAG_ULP_STATE:
                hdr = msg.buffer.upkint()
                ulp_id, seq, total = int(hdr[0]), int(hdr[1]), int(hdr[2])
                # The unoptimized accept mechanism: per-chunk processing.
                yield self.host.busy_seconds(
                    params.upvm_accept_chunk_s, label="ulp-accept"
                )
                self.app.note_state_chunk(self, ulp_id, seq, total)
            else:
                # Not for the UPVM layer: hand to whoever registered.
                self.app.unclaimed(self, msg)

    def __repr__(self) -> str:
        return (
            f"<UpvmProcess {tid_str(self.tid)} on {self.host.name} "
            f"ulps={sorted(self.resident)}>"
        )
