"""UPVM: the multi-threading + transparent ULP migration package."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..gs.scheduler import ClientCapabilities
from ..hw.cluster import Cluster
from ..hw.host import Host
from ..migration import MigrationCoordinator
from ..pvm.tid import make_tid
from ..pvm.vm import PvmSystem
from ..sim import Event
from .library import UlpProgram, UpvmApp
from .migration import UlpMigrationAdapter
from .process import UpvmProcess
from .ulp import Ulp, UlpState

__all__ = ["UpvmSystem"]


class UpvmSystem(PvmSystem):
    """PVM with ULP (user-level process) virtual processors.

    Supports SPMD applications only (paper §3.2.2).  Implements the GS
    :class:`~repro.gs.MigrationClient` protocol with *ULPs* as the
    movable unit — finer-grained than MPVM's whole processes (§3.4.2).
    """

    def __init__(
        self, cluster: Cluster, *legacy: str, default_route: str = "daemon"
    ) -> None:
        super().__init__(cluster, *legacy, default_route=default_route)
        self.apps: List[UpvmApp] = []
        self.migration = MigrationCoordinator(UlpMigrationAdapter(self))

    # -- app construction -----------------------------------------------------
    def start_app(
        self,
        name: str,
        program: UlpProgram,
        n_ulps: int,
        hosts: Optional[List] = None,
        placement: Optional[Dict[int, int]] = None,
        region_bytes: int = 4 * 1024 * 1024,
        base_state_bytes: int = 64 * 1024,
    ) -> UpvmApp:
        """Launch an SPMD application: one UPVM process per listed host,
        ``n_ulps`` ULPs distributed per ``placement`` (default: ULP *i*
        on process ``i % n_hosts``)."""
        if hosts is None:
            hosts = list(self.cluster.hosts)
        app = UpvmApp(
            self, name, program, n_ulps,
            hosts=hosts, placement=placement,
            region_bytes=region_bytes, base_state_bytes=base_state_bytes,
        )
        self.apps.append(app)
        return app

    def create_upvm_process(self, host: Host, app: UpvmApp) -> UpvmProcess:
        """Enroll one UPVM container process on ``host``."""
        pvmd = self.pvmd_on(host)
        tid = make_tid(pvmd.host_index, pvmd.alloc_local())
        proc = UpvmProcess(self, host, tid, app)
        self.tasks[tid] = proc
        pvmd.register(proc)
        ctx = self.make_context(proc)
        proc.context = ctx  # type: ignore[attr-defined]
        body = proc.start(proc.dispatcher(ctx), name=f"upvm:{app.name}@{host.name}")
        body.defuse()  # dispatcher loops forever; never awaited
        return proc

    # -- MigrationClient interface -------------------------------------------------
    def capabilities(self) -> ClientCapabilities:
        return ClientCapabilities(batch=True, reroute=True)

    def movable_units(self, host: Host) -> List[Ulp]:
        out = []
        for app in self.apps:
            for ulp in app.ulps.values():
                if ulp.host is host and ulp.state is not UlpState.DONE:
                    out.append(ulp)
        return out

    def request_migration(self, unit: Ulp, dst: Host, *, epoch=None) -> Event:
        return self.migration.request_migration(unit, dst, epoch=epoch)

    def request_batch_migration(self, pairs, *, epoch=None) -> List[Event]:
        """Co-scheduled migrations sharing one flush round per process."""
        return self.migration.request_batch_migration(pairs, epoch=epoch)

    def set_router(self, router) -> None:
        """Install the alternate-destination callback used on reroutes."""
        self.migration.set_router(router)

    @property
    def migrations(self):
        return self.migration.stats
