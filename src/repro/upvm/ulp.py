"""User Level Processes (ULPs) and inter-ULP messages.

A ULP has "some of the characteristics of a thread and some of a
process" (paper §2.2): like a thread it is a register context and a
stack scheduled in user space; like a process it owns private data and
heap — which is exactly what makes its state easy to find and migrate.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Any, Optional

from ..pvm.message import MessageBuffer
from ..sim import FilterStore
from .address_space import UlpRegion

if TYPE_CHECKING:  # pragma: no cover
    from .process import UpvmProcess

__all__ = ["UlpState", "Ulp", "UlpMessage", "ULP_ANY"]

#: Wildcard for ULP receive matching.
ULP_ANY = -1


class UlpState(Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    MIGRATING = "migrating"
    DONE = "done"


class UlpMessage:
    """A message between two ULPs."""

    __slots__ = ("src_ulp", "dst_ulp", "tag", "buffer", "sent_at", "arrived_at", "local")

    def __init__(
        self,
        src_ulp: int,
        dst_ulp: int,
        tag: int,
        buffer: Optional[MessageBuffer] = None,
        sent_at: float = -1.0,
    ) -> None:
        self.src_ulp = src_ulp
        self.dst_ulp = dst_ulp
        self.tag = tag
        self.buffer = buffer if buffer is not None else MessageBuffer()
        self.sent_at = sent_at
        self.arrived_at = -1.0
        #: True if delivered by same-process hand-off (no copy).
        self.local = False

    @property
    def nbytes(self) -> int:
        return self.buffer.nbytes

    def matches(self, want_ulp: int, want_tag: int) -> bool:
        return (want_ulp == ULP_ANY or self.src_ulp == want_ulp) and (
            want_tag == ULP_ANY or self.tag == want_tag
        )

    def __repr__(self) -> str:
        return (
            f"<UlpMessage ulp{self.src_ulp}->ulp{self.dst_ulp} tag={self.tag} "
            f"{self.nbytes}B{' local' if self.local else ''}>"
        )


class Ulp:
    """One user-level process."""

    def __init__(
        self,
        ulp_id: int,
        region: UlpRegion,
        process: "UpvmProcess",
        base_state_bytes: int = 64 * 1024,
    ) -> None:
        self.ulp_id = ulp_id
        self.region = region
        self.process = process
        self.state = UlpState.READY
        #: Register context: captured/restored at context switch and
        #: shipped first during migration.
        self.registers: dict = {"pc": region.start, "sp": region.end}
        #: Fixed footprint: stack + library bookkeeping inside the region.
        self.base_state_bytes = base_state_bytes
        #: Application data living in the ULP's private data/heap.
        self.user_state_bytes = 0
        #: Application scratch that travels with the ULP.
        self.user_data: Any = None
        #: Unreceived messages; transferred separately on migration
        #: (paper §4.2.2: "collects the message buffers used by the
        #: migrating ULP and transfers them in a separate operation").
        self.queue: FilterStore = FilterStore(process.sim)
        self.coroutine = None
        self.context = None
        #: True while executing inside the UPVM library (migration must
        #: wait for the ULP to come out — same restriction as MPVM).
        self.in_library = False

    @property
    def sim(self):
        return self.process.sim

    @property
    def host(self):
        """The host this ULP currently executes on."""
        return self.process.host

    @property
    def state_bytes(self) -> int:
        """Bytes the migration protocol must ship (excl. queued msgs)."""
        return self.base_state_bytes + self.user_state_bytes

    @property
    def queued_message_bytes(self) -> int:
        return sum(m.buffer.wire_bytes for m in self.queue.items)

    def deliver(self, msg: UlpMessage) -> None:
        msg.arrived_at = self.sim.now
        self.queue.put(msg)
        self.process.app.note_delivered(msg)

    def __repr__(self) -> str:
        return (
            f"<Ulp {self.ulp_id} on {self.process.host.name} {self.state.value} "
            f"{self.state_bytes}B>"
        )
