"""The ULP migration protocol as pipeline stages (paper §2.2, Figure 3).

Same four stages as MPVM but at ULP granularity, with two deliberate
differences the paper highlights:

* **No send-blocking**: after the flush round, senders learn the ULP's
  new location and send *directly to the new, target host*.
* **State moves as pvm messages**: a ``pvm_pkbyte()``/``pvm_send()``
  sequence per chunk (extra copies → higher obtrusiveness than MPVM's
  raw TCP), and the ULP's unreceived message buffers go in a *separate*
  sequence of sends.  The destination's accept mechanism is per-chunk
  expensive (unoptimized in the paper's prototype — the reason Table 4's
  migration cost, 6.88 s, dwarfs its obtrusiveness, 1.67 s).

Stage sequencing, timestamps, stats, timeouts, and abort handling live
in :mod:`repro.migration`; this module contributes only what is
UPVM-specific (the pkbyte transport is
:class:`~repro.migration.PvmPackTransport`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..migration import (
    MigrationAdapter,
    MigrationContext,
    MigrationStats,
    PvmPackTransport,
    Stage,
)
from ..pvm.context import Freeze
from ..pvm.errors import PvmMigrationError, PvmNotCompatible
from ..sim import Event
from .process import TAG_ULP_STATE, UpvmProcess
from .ulp import UlpState

if TYPE_CHECKING:  # pragma: no cover
    from .system import UpvmSystem

__all__ = ["MigrationStats", "UlpMigrationAdapter"]


class UlpMigrationAdapter(MigrationAdapter):
    """UPVM's half of the migration pipeline (ULP granularity)."""

    mechanism = "upvm"

    def __init__(self, system: "UpvmSystem") -> None:
        super().__init__(system)
        self.transport = PvmPackTransport(
            system.network, system.params, TAG_ULP_STATE
        )

    # -- identity -------------------------------------------------------------
    def describe(self, unit) -> str:
        return f"ulp{unit.ulp_id}"

    def unit_host(self, unit):
        return unit.process.host

    def trace_component(self, src) -> str:
        return f"upvm@{src.name}"

    def flush_domain(self, unit):
        # One flush round covers victims leaving the same hosting
        # process: the peer set (the app's other processes) matches.
        return (self.mechanism, id(unit.process))

    def prepare(self, ctx: MigrationContext) -> None:
        ulp = ctx.unit
        src_proc = ulp.process
        if isinstance(ctx.dst, UpvmProcess):
            dst_proc = ctx.dst
        else:
            dst_proc = src_proc.app.process_on(ctx.dst)
        ctx.data.update(ulp=ulp, src_proc=src_proc, dst_proc=dst_proc)
        if dst_proc is not None:
            ctx.stats.dst = dst_proc.host.name

    # -- stage 1: migration event ---------------------------------------------
    def stage_event(self, ctx: MigrationContext):
        ulp, params = ctx.unit, self.system.params
        src_proc = ctx.data["src_proc"]
        dst_proc = ctx.data["dst_proc"]
        app = src_proc.app
        # GS -> containing process, directly (no daemon hop in UPVM).
        yield ctx.sim.timeout(params.net_latency_s)
        ctx.stats.t_event = ctx.now
        ctx.trace(
            "upvm.event",
            f"migrate ulp{ulp.ulp_id} -> {getattr(ctx.dst, 'name', ctx.dst)}",
        )

        if dst_proc is None:
            raise PvmMigrationError(
                f"no UPVM process of app {app.name!r} on destination host"
            )
        if ulp.state is UlpState.DONE:
            raise PvmMigrationError(f"ulp{ulp.ulp_id} has finished")
        if ulp.state is UlpState.MIGRATING:
            raise PvmMigrationError(f"ulp{ulp.ulp_id} is already migrating")
        if dst_proc is src_proc:
            raise PvmMigrationError(f"ulp{ulp.ulp_id} is already on {ctx.src.name}")
        if not ctx.src.migration_compatible(dst_proc.host):
            raise PvmNotCompatible(
                f"cannot migrate ulp{ulp.ulp_id}: {ctx.src.arch}/{ctx.src.os} -> "
                f"{dst_proc.host.arch}/{dst_proc.host.os}"
            )

        yield from self.wait_out_of_library(ctx, lambda: ulp.in_library)

        # Interrupt the process; capture the ULP's register state.
        yield ctx.src.busy_seconds(params.signal_deliver_s, label="upvm-signal")
        resume = Event(ctx.sim)
        ctx.data["prior_state"] = ulp.state
        ulp.state = UlpState.MIGRATING
        if ulp.coroutine is not None and ulp.coroutine.is_alive:
            ulp.coroutine.interrupt(Freeze(resume, reason="upvm-migration"))
        ctx.data["resume"] = resume
        yield ctx.src.busy_seconds(params.ulp_context_switch_s, label="capture-ctx")
        ctx.stats.state_bytes = ulp.state_bytes
        ctx.stats.queued_msg_bytes = ulp.queued_message_bytes

    # -- stage 2: message flushing --------------------------------------------
    def stage_flush(self, ctx: MigrationContext):
        ulp = ctx.unit
        src_proc = ctx.data["src_proc"]
        dst_proc = ctx.data["dst_proc"]
        app = src_proc.app
        ctx.trace("upvm.flush.start", "flushing")
        batch = ctx.batch
        # A peer on a crashed machine cannot ack (and holds no live ULPs
        # to flush from) — skip it rather than wedge the protocol.
        peers = [p for p in app.processes if p is not src_proc and p.host.up]
        ctx.stats.n_peers_flushed = len(peers)
        if batch is None or batch.join(ulp):
            if batch is not None:
                yield batch.all_joined
            flushes = [self.transport.control(ctx.src, p.host, label="upvm-ctl")
                       for p in peers]
            if flushes:
                yield ctx.sim.all_of(flushes)
            acks = [self.transport.control(p.host, ctx.src, label="upvm-ctl")
                    for p in peers]
            if acks:
                yield ctx.sim.all_of(acks)
            if batch is not None and not batch.flush_done.triggered:
                batch.flush_done.succeed()
        else:
            yield batch.flush_done
        # Unlike MPVM, future sends go straight to the new location.
        app.location[ulp.ulp_id] = dst_proc
        ctx.data["redirected"] = True
        yield app.when_drained(ulp.ulp_id)
        ctx.trace("upvm.flush.done", f"{len(app.processes) - 1} processes acknowledged")

    # -- stage 3: state transfer (pkbyte/send sequence) -------------------------
    def stage_transfer(self, ctx: MigrationContext):
        ulp = ctx.unit
        src_proc = ctx.data["src_proc"]
        app = src_proc.app
        ctx.trace(
            "upvm.transfer.start",
            f"{ulp.state_bytes} B state, {ulp.queued_message_bytes} B queued messages",
        )
        src_proc.evict(ulp)
        ctx.data["evicted"] = True
        # Messages drained *into* the ULP during the flush round travel
        # too: plan the chunk sequence from the live queue size.
        msg_bytes = ulp.queued_message_bytes
        ctx.data["msg_bytes"] = msg_bytes
        ctx.stats.queued_msg_bytes = msg_bytes
        state_chunks, msg_chunks = self.transport.plan(ulp.state_bytes, msg_bytes)
        total = state_chunks + msg_chunks
        ctx.stats.n_chunks = total
        # Arm the destination's accept tracking before the first chunk.
        ctx.data["accepted"] = app.expect_state(ulp.ulp_id, total)
        yield from self.transport.send_state(ctx)
        ctx.trace("upvm.transfer.offhost", f"{total} chunks off {ctx.src.name}")

    # -- stage 4: accept + restart ----------------------------------------------
    def stage_restart(self, ctx: MigrationContext):
        ulp, params = ctx.unit, self.system.params
        dst_proc = ctx.data["dst_proc"]
        yield ctx.data["accepted"]
        ctx.stats.t_accepted = ctx.now
        dst_proc.adopt(ulp)
        # Place into the (globally reserved) region: no pointer fix-up.
        yield dst_proc.host.busy_seconds(params.ulp_context_switch_s, label="place-ulp")
        dst_proc.scheduler.enqueue(ulp)
        ctx.data.pop("resume").succeed()
        ctx.stats.t_restart_done = ctx.now
        ctx.trace(
            "upvm.restart.done",
            f"ulp{ulp.ulp_id} enqueued on {dst_proc.host.name}",
            obtrusiveness=round(ctx.stats.obtrusiveness, 4),
            migration=round(ctx.stats.migration_time, 4),
        )

    # -- abort-and-restore ----------------------------------------------------
    def abort(self, ctx: MigrationContext, stage: Stage, exc: BaseException) -> None:
        ulp = ctx.unit
        src_proc = ctx.data["src_proc"]
        app = src_proc.app
        resume = ctx.data.get("resume")
        if resume is None:
            # Failed validation before the freeze: nothing was touched.
            ctx.trace("upvm.abort", f"ulp{ulp.ulp_id}: {exc}")
            return
        app.cancel_state(ulp.ulp_id)
        if ctx.data.get("redirected"):
            app.location[ulp.ulp_id] = src_proc
        if ulp.state is UlpState.MIGRATING:
            ulp.state = ctx.data.get("prior_state", UlpState.READY)
        if ctx.data.get("evicted"):
            src_proc.adopt(ulp)
            src_proc.scheduler.enqueue(ulp)
        if not resume.triggered:
            resume.succeed()
        ctx.trace(
            "upvm.abort", f"ulp{ulp.ulp_id} restored on {ctx.src.name}: {exc}"
        )
