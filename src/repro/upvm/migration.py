"""The ULP migration protocol (paper §2.2, Figure 3).

Same four stages as MPVM but at ULP granularity, with two deliberate
differences the paper highlights:

* **No send-blocking**: after the flush round, senders learn the ULP's
  new location and send *directly to the new, target host*.
* **State moves as pvm messages**: a ``pvm_pkbyte()``/``pvm_send()``
  sequence per chunk (extra copies → higher obtrusiveness than MPVM's
  raw TCP), and the ULP's unreceived message buffers go in a *separate*
  sequence of sends.  The destination's accept mechanism is per-chunk
  expensive (unoptimized in the paper's prototype — the reason Table 4's
  migration cost, 6.88 s, dwarfs its obtrusiveness, 1.67 s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from ..pvm.context import Freeze
from ..pvm.errors import PvmMigrationError, PvmNotCompatible
from ..pvm.message import MessageBuffer
from ..sim import Event
from .process import TAG_ULP_STATE, UpvmProcess
from .ulp import Ulp, UlpState

if TYPE_CHECKING:  # pragma: no cover
    from .system import UpvmSystem

__all__ = ["UlpMigrationStats", "UlpMigrationEngine"]

_LIBRARY_POLL_S = 0.5e-3


@dataclass
class UlpMigrationStats:
    """Timestamped record of one ULP migration (drives Table 4)."""

    ulp_id: int
    src: str
    dst: str
    state_bytes: int
    queued_msg_bytes: int
    n_chunks: int
    t_event: float
    t_flush_done: float = 0.0
    t_offhost: float = 0.0
    t_accepted: float = 0.0
    t_done: float = 0.0

    @property
    def obtrusiveness(self) -> float:
        """Event -> all ULP state off-loaded from the source host.

        Per the paper's definition the *destination* may not have
        received (let alone accepted) the state yet.
        """
        return self.t_offhost - self.t_event

    @property
    def migration_time(self) -> float:
        """Event -> ULP enqueued in the destination scheduler."""
        return self.t_done - self.t_event


class UlpMigrationEngine:
    """Executes ULP migrations for an :class:`UpvmSystem`."""

    def __init__(self, system: "UpvmSystem") -> None:
        self.system = system
        self.sim = system.sim
        self.stats: List[UlpMigrationStats] = []

    def request_migration(self, ulp: Ulp, dst) -> Event:
        """Migrate ``ulp`` to ``dst`` (a Host or an UpvmProcess)."""
        done = Event(self.sim)
        if isinstance(dst, UpvmProcess):
            dst_proc = dst
        else:
            dst_proc = ulp.process.app.process_on(dst)
        self.sim.process(
            self._migrate(ulp, dst_proc, dst, done), name=f"ulp-migrate:{ulp.ulp_id}"
        )
        return done

    def _migrate(self, ulp: Ulp, dst_proc, dst, done: Event):
        params = self.system.params
        app = ulp.process.app
        src_proc = ulp.process
        src = src_proc.host
        tracer = self.system.tracer

        def trace(category: str, message: str, **fields):
            if tracer:
                tracer.emit(self.sim.now, category, f"upvm@{src.name}", message, **fields)

        # ---- stage 1: migration event -----------------------------------
        # GS -> containing process, directly (no daemon hop in UPVM).
        yield self.sim.timeout(params.net_latency_s)
        t_event = self.sim.now
        trace("upvm.event", f"migrate ulp{ulp.ulp_id} -> {getattr(dst, 'name', dst)}")

        if dst_proc is None:
            done.fail(PvmMigrationError(
                f"no UPVM process of app {app.name!r} on destination host"
            ))
            return
        if ulp.state is UlpState.DONE:
            done.fail(PvmMigrationError(f"ulp{ulp.ulp_id} has finished"))
            return
        if ulp.state is UlpState.MIGRATING:
            done.fail(PvmMigrationError(f"ulp{ulp.ulp_id} is already migrating"))
            return
        if dst_proc is src_proc:
            done.fail(PvmMigrationError(f"ulp{ulp.ulp_id} is already on {src.name}"))
            return
        if not src.migration_compatible(dst_proc.host):
            done.fail(PvmNotCompatible(
                f"cannot migrate ulp{ulp.ulp_id}: {src.arch}/{src.os} -> "
                f"{dst_proc.host.arch}/{dst_proc.host.os}"
            ))
            return

        while ulp.in_library:
            yield self.sim.timeout(_LIBRARY_POLL_S)

        # Interrupt the process; capture the ULP's register state.
        yield src.busy_seconds(params.signal_deliver_s, label="upvm-signal")
        resume = Event(self.sim)
        ulp.state = UlpState.MIGRATING
        if ulp.coroutine is not None and ulp.coroutine.is_alive:
            ulp.coroutine.interrupt(Freeze(resume, reason="upvm-migration"))
        yield src.busy_seconds(params.ulp_context_switch_s, label="capture-ctx")

        stats = UlpMigrationStats(
            ulp_id=ulp.ulp_id, src=src.name, dst=dst_proc.host.name,
            state_bytes=ulp.state_bytes,
            queued_msg_bytes=ulp.queued_message_bytes,
            n_chunks=0, t_event=t_event,
        )

        # ---- stage 2: message flushing --------------------------------------
        trace("upvm.flush.start", "flushing")
        flushes, acks = [], []
        for proc in app.processes:
            if proc is src_proc:
                continue
            flushes.append(self._control_msg(src, proc.host))
        if flushes:
            yield self.sim.all_of(flushes)
        for proc in app.processes:
            if proc is src_proc:
                continue
            acks.append(self._control_msg(proc.host, src))
        if acks:
            yield self.sim.all_of(acks)
        # Unlike MPVM, future sends go straight to the new location.
        app.location[ulp.ulp_id] = dst_proc
        yield app.when_drained(ulp.ulp_id)
        stats.t_flush_done = self.sim.now
        trace("upvm.flush.done", f"{len(app.processes) - 1} processes acknowledged")

        # ---- stage 3: state transfer (pkbyte/send sequence) ----------------------
        trace("upvm.transfer.start", f"{ulp.state_bytes} B state, "
              f"{ulp.queued_message_bytes} B queued messages")
        src_proc.evict(ulp)
        chunk = params.upvm_pack_chunk_bytes
        state_chunks = max(1, math.ceil(ulp.state_bytes / chunk))
        msg_bytes = ulp.queued_message_bytes
        msg_chunks = math.ceil(msg_bytes / chunk) if msg_bytes else 0
        total = state_chunks + msg_chunks
        stats.n_chunks = total
        accepted = app.expect_state(ulp.ulp_id, total)
        ctx = src_proc.context  # the process's pvm context
        seq = 0
        remaining = ulp.state_bytes
        for _ in range(state_chunks):
            this = min(chunk, remaining) if remaining else chunk
            remaining -= this
            yield src.busy_seconds(params.upvm_pack_chunk_s, label="pkbyte")
            buf = MessageBuffer().pkint([ulp.ulp_id, seq, total]).pkopaque(this, "ulp-state")
            yield from ctx.send(dst_proc.tid, TAG_ULP_STATE, buf)
            seq += 1
        # "...collects the message buffers used by the migrating ULP and
        # transfers them in a separate operation" (§4.2.2).
        remaining = msg_bytes
        for _ in range(msg_chunks):
            this = min(chunk, remaining)
            remaining -= this
            yield src.busy_seconds(params.upvm_pack_chunk_s, label="pkbyte-msgs")
            buf = MessageBuffer().pkint([ulp.ulp_id, seq, total]).pkopaque(this, "ulp-msgs")
            yield from ctx.send(dst_proc.tid, TAG_ULP_STATE, buf)
            seq += 1
        stats.t_offhost = self.sim.now
        trace("upvm.transfer.offhost", f"{total} chunks off {src.name}")

        # ---- stage 4: accept + restart --------------------------------------------
        yield accepted
        stats.t_accepted = self.sim.now
        dst_proc.adopt(ulp)
        # Place into the (globally reserved) region: no pointer fix-up.
        yield dst_proc.host.busy_seconds(params.ulp_context_switch_s, label="place-ulp")
        dst_proc.scheduler.enqueue(ulp)
        resume.succeed()
        stats.t_done = self.sim.now
        self.stats.append(stats)
        trace("upvm.restart.done",
              f"ulp{ulp.ulp_id} enqueued on {dst_proc.host.name}",
              obtrusiveness=round(stats.obtrusiveness, 4),
              migration=round(stats.migration_time, 4))
        done.succeed(stats)

    def _control_msg(self, src, dst) -> Event:
        if src is dst:
            return src.ipc_copy(64, label="ctl-local")
        return self.system.network.transfer(src, dst, 64, label="upvm-ctl")
