"""MPVM: PVM extended with transparent process migration."""

from __future__ import annotations

from typing import List, Tuple

from ..gs.scheduler import ClientCapabilities
from ..hw.cluster import Cluster
from ..hw.host import Host
from ..migration import MigrationCoordinator
from ..pvm.task import Task
from ..pvm.tid import make_tid, tid_str
from ..pvm.vm import PvmSystem
from ..sim import Event
from .context import MpvmContext
from .migration import MpvmMigrationAdapter

__all__ = ["MpvmSystem"]


class MpvmSystem(PvmSystem):
    """A PVM virtual machine whose tasks can transparently migrate.

    Source-compatible with :class:`PvmSystem`: the same ``program(ctx)``
    bodies run unchanged ("no more than re-compilation and re-linking").
    Satisfies the GS :class:`~repro.gs.MigrationClient` protocol, with
    *whole tasks* as the movable unit — the coarsest granularity of the
    three systems (§3.4.1).
    """

    context_class = MpvmContext

    def __init__(
        self, cluster: Cluster, *legacy: str, default_route: str = "daemon"
    ) -> None:
        super().__init__(cluster, *legacy, default_route=default_route)
        self.migration = MigrationCoordinator(MpvmMigrationAdapter(self))

    # -- MigrationClient interface ------------------------------------------
    def capabilities(self) -> ClientCapabilities:
        return ClientCapabilities(batch=True, reroute=True)

    def movable_units(self, host: Host) -> List[Task]:
        return [t for t in self.live_tasks() if t.host is host]

    def request_migration(self, unit: Task, dst: Host, *, epoch=None) -> Event:
        return self.migration.request_migration(unit, dst, epoch=epoch)

    def request_batch_migration(self, pairs, *, epoch=None) -> List[Event]:
        """Co-scheduled migrations sharing one flush round per source."""
        return self.migration.request_batch_migration(pairs, epoch=epoch)

    def set_router(self, router) -> None:
        """Install the alternate-destination callback used on reroutes."""
        self.migration.set_router(router)

    # -- tid rebinding on migration --------------------------------------------
    def rebind_task_tid(self, task: Task, new_host: Host) -> Tuple[int, int]:
        """Give the migrated task its new-host tid; forward the old one."""
        old_tid = task.tid
        self.pvmd_on(task.host).unregister(task)
        new_pvmd = self.pvmd_on(new_host)
        new_tid = make_tid(new_pvmd.host_index, new_pvmd.alloc_local())
        del self.tasks[old_tid]
        self.tasks[new_tid] = task
        self.tid_forward[old_tid] = new_tid
        task.tid = new_tid
        task.name = tid_str(new_tid)
        new_pvmd.register(task)
        # Any direct-TCP channels to/from the old endpoint are dead.
        self.direct_route.invalidate_for(old_tid)
        self.notify.task_rebound(old_tid, new_tid)
        return old_tid, new_tid

    @property
    def migrations(self):
        """Stats for every completed migration."""
        return self.migration.stats
