"""Condor-style checkpoint/restart migration — the alternative design
point the paper contrasts with MPVM (§5, Related Work):

    "[Condor] advocates checkpoint-based process migration both for
    unobtrusiveness and fault tolerance, which has some advantages and
    some disadvantages compared to the 'migrate current state' policy we
    have chosen ...  While the checkpoint approach makes migration less
    obtrusive, there is a cost of taking periodic checkpoints, and there
    is a file I/O 'idempotency' restriction placed on the application
    since any part of the computation may be executed more than once."

This module implements that design point over the same substrate so the
trade-off can be *measured* (see ``benchmarks/test_ablation_checkpoint``):

* a :class:`CheckpointEngine` writes periodic checkpoints of a task's
  state to local disk (the task is briefly frozen while the image is
  written — Condor's stop-and-write);
* "migration" = kill the process on the source host (obtrusiveness is
  just the kill, near zero) + ship the *last checkpoint* to the
  destination + re-execute the work done since that checkpoint.

The re-executed work is charged to the destination CPU; semantically the
application must tolerate re-execution (the idempotency restriction —
pure computation like Opt's gradient loop qualifies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..hw.host import Host
from ..hw.tcp import TcpConnection
from ..pvm.context import Freeze
from ..pvm.errors import PvmError, PvmMigrationError, PvmNotCompatible
from ..pvm.task import Task
from ..sim import Event, Process

if TYPE_CHECKING:  # pragma: no cover
    from .system import MpvmSystem

__all__ = ["Checkpoint", "CheckpointStats", "CheckpointEngine"]


@dataclass
class Checkpoint:
    """One on-disk checkpoint image."""

    task: str
    taken_at: float
    state_bytes: int
    write_cost_s: float
    #: Host holding a replica that survives the task's own host crashing
    #: (``None`` = the image exists only on the local disk).
    stored_on: Optional[str] = None


@dataclass
class CheckpointStats:
    """One checkpoint-based 'migration' (vacate + restart elsewhere)."""

    task: str
    src: str
    dst: str
    state_bytes: int
    t_event: float
    t_offhost: float = 0.0       #: host vacated (the kill)
    t_image_arrived: float = 0.0
    t_restarted: float = 0.0     #: back in the computation
    lost_work_s: float = 0.0     #: re-executed computation

    @property
    def obtrusiveness(self) -> float:
        return self.t_offhost - self.t_event

    @property
    def migration_time(self) -> float:
        """Until the task is *re-integrated*, including re-executed work —
        the honest comparison point against MPVM's migration cost."""
        return self.t_restarted - self.t_event


class CheckpointEngine:
    """Periodic checkpointing + kill/restart migration for MPVM tasks."""

    def __init__(
        self,
        system: "MpvmSystem",
        period_s: float = 60.0,
        disk_bytes_per_s: float = 1.5e6,  # era-typical local SCSI write
        store_host: Optional[Host] = None,
    ) -> None:
        self.system = system
        self.sim = system.sim
        self.period_s = period_s
        self.disk_bytes_per_s = disk_bytes_per_s
        #: Checkpoint server: when set, every completed image is also
        #: shipped to this host so it survives the writer's machine
        #: crashing (the Condor checkpoint-server arrangement).  ``None``
        #: keeps the classic local-disk-only behaviour.
        self.store_host = store_host
        self.checkpoints: Dict[int, Checkpoint] = {}  #: latest, by tid
        self.history: List[Checkpoint] = []
        self.stats: List[CheckpointStats] = []
        self._writers: Dict[int, Process] = {}

    # -- periodic checkpointing ------------------------------------------------
    def protect(self, task: Task, initial: bool = False) -> Process:
        """Start taking periodic checkpoints of ``task``.

        ``initial=True`` writes the first checkpoint immediately instead
        of waiting one full period — a crash in the first period is then
        already recoverable (used by the recovery layer).
        """
        if task.tid in self._writers:
            raise PvmMigrationError(f"{task.name} is already protected")
        proc = self.sim.process(
            self._writer(task, initial), name=f"ckpt:{task.name}"
        )
        proc.defuse()  # runs until the task exits
        self._writers[task.tid] = proc
        return proc

    def _writer(self, task: Task, initial: bool = False):
        from ..unix.process import ProcState

        if initial and task.alive:
            yield from self.checkpoint_now(task)
        while task.alive:
            yield self.sim.timeout(self.period_s)
            if not task.alive:
                return
            if task.state is ProcState.MIGRATING:
                continue  # skip a cycle rather than stack onto a move
            if not task.host.up:
                continue  # no disk to write to; the recovery layer owns it
            yield from self.checkpoint_now(task)

    def checkpoint_now(self, task: Task):
        """Take one checkpoint (generator): freeze, write, resume."""
        t0 = self.sim.now
        resume = Event(self.sim)
        if task.coroutine is not None and task.coroutine.is_alive:
            # The process is stopped while its image is written out.
            task.interrupt_body(Freeze(resume, reason="checkpoint"))
        state = task.migration_state_bytes
        yield task.host.busy_seconds(
            self.system.params.signal_deliver_s, label="ckpt-stop"
        )
        yield task.host.compute(
            state * task.host.cpu.rate / self.disk_bytes_per_s, label="ckpt-write"
        )
        if not resume.triggered:
            resume.succeed()
        if not task.host.up:
            # The machine died while the image was being written: the
            # partial file on its disk is useless and must not shadow
            # the previous complete checkpoint.
            if self.system.tracer:
                self.system.tracer.emit(
                    self.sim.now, "ckpt.discard", task.name,
                    f"host {task.host.name} crashed mid-write",
                )
            return None
        ckpt = Checkpoint(
            task=task.name, taken_at=self.sim.now,
            state_bytes=state, write_cost_s=self.sim.now - t0,
        )
        self.checkpoints[task.tid] = ckpt
        self.history.append(ckpt)
        if self.system.tracer:
            self.system.tracer.emit(
                self.sim.now, "ckpt.write", task.name,
                f"{state} bytes in {ckpt.write_cost_s:.3f}s",
            )
        if self.store_host is not None and self.store_host is not task.host:
            # Replicate in the background: the task already resumed, the
            # ship only occupies the network (and fails harmlessly if
            # either end dies mid-transfer — the replica just isn't
            # recorded and the previous one remains authoritative).
            yield from self._replicate(task.host, ckpt)
        return ckpt

    def _replicate(self, src: Host, ckpt: Checkpoint):
        store = self.store_host
        assert store is not None
        if not store.up:
            return
        try:
            yield self.system.network.transfer(
                src, store, ckpt.state_bytes, label="ckpt-ship"
            )
        except PvmError:
            return
        ckpt.stored_on = store.name
        if self.system.tracer:
            self.system.tracer.emit(
                self.sim.now, "ckpt.ship", ckpt.task,
                f"{ckpt.state_bytes} bytes replicated to {store.name}",
            )

    @property
    def total_checkpoint_cost_s(self) -> float:
        """Aggregate stop-and-write time paid so far."""
        return sum(c.write_cost_s for c in self.history)

    # -- kill/restart migration ------------------------------------------------------
    def request_migration(self, task: Task, dst: Host) -> Event:
        done = Event(self.sim)
        self.sim.process(self._migrate(task, dst, done), name=f"ckpt-mig:{task.name}")
        return done

    def _migrate(self, task: Task, dst: Host, done: Event):
        system = self.system
        params = system.params
        src = task.host
        yield self.sim.timeout(params.net_latency_s)
        t_event = self.sim.now

        ckpt = self.checkpoints.get(task.tid)
        if ckpt is None:
            done.fail(PvmMigrationError(
                f"{task.name} has no checkpoint; call protect()/checkpoint_now()"
            ))
            return
        if not task.alive or src is dst:
            done.fail(PvmMigrationError(f"{task.name} cannot migrate"))
            return
        if not src.migration_compatible(dst):
            done.fail(PvmNotCompatible(
                f"checkpoint of {task.name} is {src.arch}/{src.os} state"
            ))
            return

        stats = CheckpointStats(
            task=task.name, src=src.name, dst=dst.name,
            state_bytes=ckpt.state_bytes, t_event=t_event,
        )
        # Freeze the victim; peers block sends exactly as in MPVM (the
        # flush is instantaneous here: the victim is not receiving).
        resume = Event(self.sim)
        if task.coroutine is not None and task.coroutine.is_alive:
            task.interrupt_body(Freeze(resume, reason="ckpt-migration"))
        peers = [t for t in system.live_tasks() if t is not task]
        for peer in peers:
            peer.context.block_sends_to(task.tid)  # type: ignore[attr-defined]

        # --- vacate: just kill the local incarnation --------------------------
        yield src.busy_seconds(params.signal_deliver_s, label="sigkill")
        stats.t_offhost = self.sim.now  # the owner has their machine back

        # --- restore elsewhere -------------------------------------------------
        yield dst.busy_seconds(params.exec_process_s, label="restart-exec")
        conn = TcpConnection(system.network, src, dst)
        yield from conn.connect()
        yield from conn.send(ckpt.state_bytes, receiver_copies=True, label="ckpt-image")
        conn.close()
        stats.t_image_arrived = self.sim.now

        old_tid, new_tid = system.rebind_task_tid(task, dst)
        task.relocate_to(dst)
        yield dst.copy(ckpt.state_bytes, label="ckpt-assume")
        yield dst.busy_seconds(params.enroll_s, label="re-enroll")
        for peer in peers:
            peer.context.unblock_sends_to(old_tid, new_tid)  # type: ignore[attr-defined]
        task.context.learn_remap(old_tid, new_tid)  # type: ignore[attr-defined]

        # --- re-execute the work lost since the checkpoint ---------------------
        lost = max(0.0, stats.t_event - ckpt.taken_at)
        stats.lost_work_s = lost
        if lost > 0:
            # The application rolls back; any part of the computation may
            # run more than once (the idempotency restriction).
            yield dst.busy_seconds(lost * src.cpu.rate / dst.cpu.rate,
                                   label="recompute")
        resume.succeed()
        stats.t_restarted = self.sim.now
        self.stats.append(stats)
        if system.tracer:
            system.tracer.emit(
                self.sim.now, "ckpt.migrate", task.name,
                f"{src.name} -> {dst.name}",
                obtrusiveness=round(stats.obtrusiveness, 4),
                migration=round(stats.migration_time, 4),
                lost_work=round(lost, 3),
            )
        done.succeed(stats)

    # -- crash recovery (repro.recovery) ----------------------------------------
    def restartable(self, task: Task) -> bool:
        """Can ``task`` be restarted after its host dies?

        True iff a checkpoint exists whose replica lives on a host other
        than the (dead) source, and that host is currently reachable.
        """
        ckpt = self.checkpoints.get(task.tid)
        if ckpt is None or ckpt.stored_on is None:
            return False
        try:
            store = self.system.cluster.host(ckpt.stored_on)
        except KeyError:
            return False
        return store.up

    def restart(
        self,
        task: Task,
        dst: Host,
        resume: Optional[Event] = None,
        frozen_at: Optional[float] = None,
    ):
        """Restart a crashed task on ``dst`` from its replicated image.

        Generator (``yield from`` it).  Unlike :meth:`_migrate`, the
        source host is *dead*: nothing is charged there, and the image
        comes from the checkpoint server (``Checkpoint.stored_on``), not
        the source disk.  ``resume`` is the crash-time freeze event the
        recovery layer planted (a fresh one is made if the task somehow
        isn't frozen), ``frozen_at`` the crash time used to size the
        re-executed work.  Returns the :class:`CheckpointStats` record.
        """
        system = self.system
        params = system.params
        src = task.host
        t_event = frozen_at if frozen_at is not None else self.sim.now

        ckpt = self.checkpoints.get(task.tid)
        if ckpt is None or ckpt.stored_on is None:
            raise PvmMigrationError(f"{task.name} has no surviving checkpoint")
        store = system.cluster.host(ckpt.stored_on)
        if not store.up:
            raise PvmMigrationError(
                f"checkpoint server {store.name} for {task.name} is down"
            )
        if not src.migration_compatible(dst):
            raise PvmNotCompatible(
                f"checkpoint of {task.name} is {src.arch}/{src.os} state"
            )
        if resume is None:
            resume = Event(self.sim)
            if task.coroutine is not None and task.coroutine.is_alive:
                task.interrupt_body(Freeze(resume, reason="restart"))

        stats = CheckpointStats(
            task=task.name, src=src.name, dst=dst.name,
            state_bytes=ckpt.state_bytes, t_event=t_event,
        )
        stats.t_offhost = t_event  # the crash itself vacated the host
        peers = [t for t in system.live_tasks() if t is not task]
        for peer in peers:
            peer.context.block_sends_to(task.tid)  # type: ignore[attr-defined]

        yield dst.busy_seconds(params.exec_process_s, label="restart-exec")
        if store is dst:
            # The image already sits on the destination's own disk: a
            # local read replaces the network ship.
            yield dst.compute(
                ckpt.state_bytes * dst.cpu.rate / self.disk_bytes_per_s,
                label="ckpt-read",
            )
        else:
            conn = TcpConnection(system.network, store, dst)
            yield from conn.connect()
            yield from conn.send(
                ckpt.state_bytes, receiver_copies=True, label="ckpt-image"
            )
            conn.close()
        stats.t_image_arrived = self.sim.now

        old_tid, new_tid = system.rebind_task_tid(task, dst)
        task.relocate_to(dst)
        yield dst.copy(ckpt.state_bytes, label="ckpt-assume")
        yield dst.busy_seconds(params.enroll_s, label="re-enroll")
        for peer in peers:
            peer.context.unblock_sends_to(old_tid, new_tid)  # type: ignore[attr-defined]
        task.context.learn_remap(old_tid, new_tid)  # type: ignore[attr-defined]

        # Re-execute the work lost between the checkpoint and the crash.
        lost = max(0.0, t_event - ckpt.taken_at)
        stats.lost_work_s = lost
        if lost > 0:
            yield dst.busy_seconds(lost * src.cpu.rate / dst.cpu.rate,
                                   label="recompute")
        if not resume.triggered:
            resume.succeed()
        stats.t_restarted = self.sim.now
        self.stats.append(stats)
        if system.tracer:
            system.tracer.emit(
                self.sim.now, "ckpt.restart", task.name,
                f"{src.name} (dead) -> {dst.name} via {store.name}",
                migration=round(stats.migration_time, 4),
                lost_work=round(lost, 3),
            )
        return stats
