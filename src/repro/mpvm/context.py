"""The MPVM run-time library: migratable-PVM context.

MPVM is source-compatible with PVM — application code is unchanged — but
the library underneath adds exactly the three sources of method overhead
the paper enumerates (§4.1.1):

1. re-entrancy flags set on every library call (so a migration is never
   attempted while the task executes inside the library);
2. tid re-mapping on every send and receive (a migrated task has a new
   tid; the application keeps using the original, *virtual* tid);
3. the re-implemented ``pvm_recv`` that makes the blocking wait a safe
   migration point.

It also implements the sender-side half of the flush protocol: once a
flush message for tid *T* arrives, every ``pvm_send`` to *T* blocks until
the restart message announces *T*'s new tid (§2.1 stages 2 and 4).
"""

from __future__ import annotations

from typing import Dict, Generator

from ..pvm.context import PvmContext
from ..sim import Event

__all__ = ["MpvmContext"]


class MpvmContext(PvmContext):
    """PVM interface with transparent-migration support."""

    def __init__(self, system, task) -> None:
        super().__init__(system, task)
        #: virtual (application-visible) tid -> current real tid
        self._v2r: Dict[int, int] = {}
        #: current real tid -> virtual tid
        self._r2v: Dict[int, int] = {}
        #: real tids currently frozen for migration -> unblock event
        self._send_blocked: Dict[int, Event] = {}

    # -- identity: the application always sees the original tid ----------------
    @property
    def mytid(self) -> int:
        return self._map_tid_in(self.task.tid)

    # -- overhead hooks ------------------------------------------------------
    def _call_overhead_s(self) -> float:
        # Re-entrancy flag set/clear + one tid re-map table probe.
        return self.params.mpvm_library_call_s + self.params.mpvm_tid_remap_s

    # -- tid re-mapping ----------------------------------------------------------
    def _map_tid_out(self, tid: int) -> int:
        return self._v2r.get(tid, tid)

    def _map_tid_in(self, tid: int) -> int:
        return self._r2v.get(tid, tid)

    def learn_remap(self, old_real: int, new_real: int) -> None:
        """Process a restart message: tid ``old_real`` is now ``new_real``."""
        virtual = self._r2v.pop(old_real, old_real)
        self._v2r[virtual] = new_real
        self._r2v[new_real] = virtual

    # -- flush protocol: sender side ------------------------------------------------
    def block_sends_to(self, real_tid: int) -> Event:
        """Handle a flush message: future sends to ``real_tid`` block."""
        ev = self._send_blocked.get(real_tid)
        if ev is None:
            ev = Event(self.sim)
            self._send_blocked[real_tid] = ev
        return ev

    def unblock_sends_to(self, old_real: int, new_real: int) -> None:
        """Handle a restart message: re-map and release blocked senders."""
        self.learn_remap(old_real, new_real)
        ev = self._send_blocked.pop(old_real, None)
        if ev is not None and not ev.triggered:
            ev.succeed()

    def _send_gate(self, dst_tid: int) -> Generator[Event, None, None]:
        while dst_tid in self._send_blocked:
            yield self._send_blocked[dst_tid]
            dst_tid = self._map_tid_out(self._map_tid_in(dst_tid))
