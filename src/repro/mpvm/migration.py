"""The MPVM migration protocol as pipeline stages (paper §2.1, Figure 1).

Four stages, expressed as a :class:`~repro.migration.MigrationAdapter`:

1. **Migration event** — the GS signals the mpvmd on the to-be-vacated
   host; the daemon picks the victim task and delivers a migration signal.
2. **Message flushing** — flush messages go to every other task; each
   acknowledges and from then on blocks sends to the migrating task; the
   protocol waits until nothing addressed to the task is still in flight.
3. **VP state transfer** — a *skeleton* process (same executable) is
   exec'd on the destination; a TCP connection moves the task's writable
   segments, register context, and queued messages into it.
4. **Restart** — the skeleton assumes the state, re-enrolls with the
   destination mpvmd under a *new tid*, and a restart message unblocks
   senders and installs the tid re-mapping everywhere.

Obtrusiveness = stage 1 through end of stage 3 (work off the source
host); migration cost additionally includes stage 4 — matching the
paper's Table 2 definitions.  The stage sequencing, timestamps, stats,
timeouts, and abort handling live in :mod:`repro.migration`; this module
contributes only what is MPVM-specific.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..migration import (
    MigrationAdapter,
    MigrationContext,
    MigrationStats,
    Stage,
    TcpSkeletonTransport,
)
from ..pvm.context import Freeze
from ..pvm.errors import PvmMigrationError, PvmNotCompatible
from ..pvm.tid import tid_str
from ..sim import Event
from ..unix.process import ProcState

if TYPE_CHECKING:  # pragma: no cover
    from .system import MpvmSystem

__all__ = ["MigrationStats", "MpvmMigrationAdapter"]


class MpvmMigrationAdapter(MigrationAdapter):
    """MPVM's half of the migration pipeline (task granularity)."""

    mechanism = "mpvm"

    def __init__(self, system: "MpvmSystem") -> None:
        super().__init__(system)
        self.transport = TcpSkeletonTransport(system.network)

    # -- identity -------------------------------------------------------------
    def describe(self, unit) -> str:
        return unit.name

    def trace_component(self, src) -> str:
        return f"mpvmd@{src.name}"

    # -- stage 1: migration event ---------------------------------------------
    def stage_event(self, ctx: MigrationContext):
        task, dst, params = ctx.unit, ctx.dst, self.system.params
        # GS -> mpvmd migrate message (control packet to the source host).
        yield ctx.sim.timeout(params.net_latency_s)
        ctx.stats.t_event = ctx.now
        ctx.trace("mpvm.event", f"migrate {task.name} -> {dst.name}")

        if not task.alive:
            raise PvmMigrationError(f"{task.name} has exited")
        if task.state is ProcState.MIGRATING:
            raise PvmMigrationError(f"{task.name} is already migrating")
        if ctx.src is dst:
            raise PvmMigrationError(f"{task.name} is already on {dst.name}")
        if not ctx.src.migration_compatible(dst):
            ctx.trace(
                "mpvm.abort",
                f"{ctx.src.name} and {dst.name} are not migration compatible",
            )
            raise PvmNotCompatible(
                f"cannot migrate {task.name}: "
                f"{ctx.src.arch}/{ctx.src.os} -> {dst.arch}/{dst.os}"
            )

        # A task executing inside the run-time library may not migrate;
        # wait for it to come out (the time spent there is bounded).
        yield from self.wait_out_of_library(ctx, lambda: task.in_library)

        # Freeze the victim: deliver the migration signal and interrupt
        # whatever it was doing (compute is checkpointed, recv re-armed).
        resume = Event(ctx.sim)
        task.state = ProcState.MIGRATING
        task.interrupt_body(Freeze(resume, reason="mpvm-migration"))
        ctx.data["resume"] = resume
        yield ctx.src.busy_seconds(params.signal_deliver_s, label="sigmigrate")
        ctx.stats.state_bytes = task.migration_state_bytes

    # -- stage 2: message flushing --------------------------------------------
    def stage_flush(self, ctx: MigrationContext):
        task, system = ctx.unit, self.system
        ctx.trace("mpvm.flush.start", "flushing messages")
        batch = ctx.batch
        if batch is None:
            victims = [task]
            leads = True
        else:
            leads = batch.join(task)
            if leads:
                # Hold the round until every co-migrating victim is
                # frozen (or has abandoned), so one block/ack round
                # covers the whole batch.
                yield batch.all_joined
            victims = batch.victims if leads else []
        peers = [
            t
            for t in system.live_tasks()
            if t is not task
            and t.host.up  # a crashed machine's tasks cannot ack the flush
            and (batch is None or t not in batch.units)
        ]
        ctx.stats.n_peers_flushed = len(peers)
        ctx.data["peers"] = peers
        if leads:
            flush_events = []
            for peer in peers:
                for victim in victims:
                    peer.context.block_sends_to(victim.tid)  # type: ignore[attr-defined]
                flush_events.append(self.transport.control(ctx.src, peer.host))
            if flush_events:
                yield ctx.sim.all_of(flush_events)
            # Acknowledgements return from every peer.
            acks = [self.transport.control(peer.host, ctx.src) for peer in peers]
            if acks:
                yield ctx.sim.all_of(acks)
            if batch is not None and not batch.flush_done.triggered:
                batch.flush_done.succeed()
        else:
            yield batch.flush_done
        # Wait for in-flight messages addressed to the victim to land.
        yield system.when_drained(task.tid)
        ctx.trace("mpvm.flush.done", f"{len(peers)} peers acknowledged")

    # -- stage 3: VP state transfer -------------------------------------------
    def stage_transfer(self, ctx: MigrationContext):
        task, dst, params = ctx.unit, ctx.dst, self.system.params
        ctx.trace("mpvm.transfer.start", f"exec skeleton on {dst.name}")
        # Start the skeleton process (same executable) on the destination.
        yield dst.busy_seconds(params.exec_process_s, label="skeleton-exec")
        ctx.stats.t_transfer_start = ctx.now
        ctx.stats.state_bytes = task.migration_state_bytes
        yield from self.transport.send_state(ctx)
        ctx.trace(
            "mpvm.transfer.done",
            f"{ctx.stats.state_bytes} bytes off {ctx.src.name}",
            bytes=ctx.stats.state_bytes,
        )

    # -- stage 4: restart -----------------------------------------------------
    def stage_restart(self, ctx: MigrationContext):
        task, dst, system = ctx.unit, ctx.dst, self.system
        params = system.params
        ctx.trace("mpvm.restart.start", "skeleton assumes state")
        old_tid, new_tid = system.rebind_task_tid(task, dst)
        ctx.data["old_tid"], ctx.data["new_tid"] = old_tid, new_tid
        task.relocate_to(dst)
        # The skeleton integrates the received image (page it into place).
        yield dst.copy(ctx.stats.state_bytes, label="assume-state")
        # Re-enroll with the destination mpvmd.
        yield dst.busy_seconds(params.enroll_s, label="re-enroll")
        # Restart message to every task: unblocks senders, installs remap.
        # Recomputed rather than reusing the flush peer set — co-batched
        # victims were not flush peers but must still learn the remap.
        peers = [t for t in system.live_tasks() if t is not task and t.host.up]
        restart_events = [self.transport.control(dst, peer.host) for peer in peers]
        if restart_events:
            yield ctx.sim.all_of(restart_events)
        for peer in peers:
            peer.context.unblock_sends_to(old_tid, new_tid)  # type: ignore[attr-defined]
        task.context.learn_remap(old_tid, new_tid)  # type: ignore[attr-defined]
        task.state = ProcState.RUNNING
        ctx.data.pop("resume").succeed()
        ctx.stats.t_restart_done = ctx.now
        ctx.trace(
            "mpvm.restart.done",
            f"{tid_str(old_tid)} restarted as {tid_str(new_tid)} on {dst.name}",
            obtrusiveness=round(ctx.stats.obtrusiveness, 4),
            migration=round(ctx.stats.migration_time, 4),
        )

    # -- abort-and-restore ----------------------------------------------------
    def abort(self, ctx: MigrationContext, stage: Stage, exc: BaseException) -> None:
        task = ctx.unit
        resume = ctx.data.get("resume")
        if resume is None:
            # Failed validation before the freeze: the task was never
            # touched (and may be mid-protocol for a *different*
            # migration) — nothing to restore.
            ctx.trace("mpvm.abort", f"{task.name}: {exc}")
            return
        # Unblock any peers whose sends we parked.  If the tid was
        # already rebound (restart-stage failure) complete the remap;
        # otherwise map the tid to itself, which simply releases sends.
        old_tid = ctx.data.get("old_tid", task.tid)
        new_tid = ctx.data.get("new_tid", task.tid)
        for peer in ctx.data.get("peers", []):
            if peer.alive:
                peer.context.unblock_sends_to(old_tid, new_tid)  # type: ignore[attr-defined]
        if old_tid != new_tid:
            task.context.learn_remap(old_tid, new_tid)  # type: ignore[attr-defined]
        if task.alive and task.state is ProcState.MIGRATING:
            task.state = ProcState.RUNNING
        if not resume.triggered:
            resume.succeed()
        ctx.trace("mpvm.abort", f"{task.name} restored on {task.host.name}: {exc}")
