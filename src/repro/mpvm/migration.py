"""The MPVM migration protocol engine (paper §2.1, Figure 1).

Four stages:

1. **Migration event** — the GS signals the mpvmd on the to-be-vacated
   host; the daemon picks the victim task and delivers a migration signal.
2. **Message flushing** — flush messages go to every other task; each
   acknowledges and from then on blocks sends to the migrating task; the
   protocol waits until nothing addressed to the task is still in flight.
3. **VP state transfer** — a *skeleton* process (same executable) is
   exec'd on the destination; a TCP connection moves the task's writable
   segments, register context, and queued messages into it.
4. **Restart** — the skeleton assumes the state, re-enrolls with the
   destination mpvmd under a *new tid*, and a restart message unblocks
   senders and installs the tid re-mapping everywhere.

Obtrusiveness = stage 1 through end of stage 3 (work off the source
host); migration cost additionally includes stage 4 — matching the
paper's Table 2 definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from ..hw.host import Host
from ..hw.tcp import TcpConnection
from ..pvm.context import Freeze
from ..pvm.errors import PvmMigrationError, PvmNotCompatible
from ..pvm.task import Task
from ..pvm.tid import tid_str
from ..sim import Event
from ..unix.process import ProcState

if TYPE_CHECKING:  # pragma: no cover
    from .system import MpvmSystem

__all__ = ["MigrationStats", "MigrationEngine"]

#: Poll interval while waiting for a task to leave the run-time library.
_LIBRARY_POLL_S = 0.5e-3


@dataclass
class MigrationStats:
    """Timestamped record of one migration (drives Tables 2/4 benches)."""

    task: str
    src: str
    dst: str
    state_bytes: int
    t_event: float
    t_flush_done: float = 0.0
    t_transfer_start: float = 0.0
    t_offhost: float = 0.0
    t_restart_done: float = 0.0
    n_peers_flushed: int = 0

    @property
    def obtrusiveness(self) -> float:
        """Migration event -> work off the source host."""
        return self.t_offhost - self.t_event

    @property
    def migration_time(self) -> float:
        """Migration event -> task re-integrated in the computation."""
        return self.t_restart_done - self.t_event

    @property
    def restart_time(self) -> float:
        return self.t_restart_done - self.t_offhost

    @property
    def flush_time(self) -> float:
        return self.t_flush_done - self.t_event


class MigrationEngine:
    """Executes migrations for an :class:`MpvmSystem`."""

    def __init__(self, system: "MpvmSystem") -> None:
        self.system = system
        self.sim = system.sim
        self.stats: List[MigrationStats] = []

    # -- GS entry point -----------------------------------------------------
    def request_migration(self, task: Task, dst: Host) -> Event:
        """Start the protocol; the returned event carries the stats."""
        done = Event(self.sim)
        self.sim.process(self._migrate(task, dst, done), name=f"migrate:{task.name}")
        return done

    # -- protocol ---------------------------------------------------------------
    def _migrate(self, task: Task, dst: Host, done: Event):
        system = self.system
        params = system.params
        net = system.network
        src = task.host
        tracer = system.tracer

        def trace(category: str, message: str, **fields):
            if tracer:
                tracer.emit(self.sim.now, category, f"mpvmd@{src.name}", message, **fields)

        # ---- stage 1: migration event --------------------------------------
        # GS -> mpvmd migrate message (control packet to the source host).
        yield self.sim.timeout(params.net_latency_s)
        t_event = self.sim.now
        trace("mpvm.event", f"migrate {task.name} -> {dst.name}")

        if not task.alive:
            done.fail(PvmMigrationError(f"{task.name} has exited"))
            return
        if task.state is ProcState.MIGRATING:
            done.fail(PvmMigrationError(f"{task.name} is already migrating"))
            return
        if src is dst:
            done.fail(PvmMigrationError(f"{task.name} is already on {dst.name}"))
            return
        if not src.migration_compatible(dst):
            trace("mpvm.abort", f"{src.name} and {dst.name} are not migration compatible")
            done.fail(
                PvmNotCompatible(
                    f"cannot migrate {task.name}: {src.arch}/{src.os} -> {dst.arch}/{dst.os}"
                )
            )
            return

        # A task executing inside the run-time library may not migrate;
        # wait for it to come out (the time spent there is bounded).
        while task.in_library:
            yield self.sim.timeout(_LIBRARY_POLL_S)

        # Freeze the victim: deliver the migration signal and interrupt
        # whatever it was doing (compute is checkpointed, recv re-armed).
        resume = Event(self.sim)
        task.state = ProcState.MIGRATING
        task.interrupt_body(Freeze(resume, reason="mpvm-migration"))
        yield src.busy_seconds(params.signal_deliver_s, label="sigmigrate")

        stats = MigrationStats(
            task=task.name, src=src.name, dst=dst.name,
            state_bytes=task.migration_state_bytes, t_event=t_event,
        )

        # ---- stage 2: message flushing ----------------------------------------
        trace("mpvm.flush.start", "flushing messages")
        peers = [t for t in system.live_tasks() if t is not task]
        stats.n_peers_flushed = len(peers)
        flush_events = []
        for peer in peers:
            peer.context.block_sends_to(task.tid)  # type: ignore[attr-defined]
            flush_events.append(self._control_msg(src, peer.host))
        if flush_events:
            yield self.sim.all_of(flush_events)
        # Acknowledgements return from every peer.
        acks = [self._control_msg(peer.host, src) for peer in peers]
        if acks:
            yield self.sim.all_of(acks)
        # Wait for in-flight messages addressed to the victim to land.
        yield system.when_drained(task.tid)
        stats.t_flush_done = self.sim.now
        trace("mpvm.flush.done", f"{len(peers)} peers acknowledged")

        # ---- stage 3: VP state transfer ------------------------------------------
        trace("mpvm.transfer.start", f"exec skeleton on {dst.name}")
        # Start the skeleton process (same executable) on the destination.
        yield dst.busy_seconds(params.exec_process_s, label="skeleton-exec")
        stats.t_transfer_start = self.sim.now
        conn = TcpConnection(net, src, dst)
        yield from conn.connect()
        state_bytes = task.migration_state_bytes
        stats.state_bytes = state_bytes
        yield from conn.send(state_bytes, receiver_copies=True, label="mpvm-state")
        conn.close()
        stats.t_offhost = self.sim.now
        trace("mpvm.transfer.done", f"{state_bytes} bytes off {src.name}",
              bytes=state_bytes)

        # ---- stage 4: restart -------------------------------------------------------
        trace("mpvm.restart.start", "skeleton assumes state")
        old_tid, new_tid = system.rebind_task_tid(task, dst)
        task.relocate_to(dst)
        # The skeleton integrates the received image (page it into place).
        yield dst.copy(state_bytes, label="assume-state")
        # Re-enroll with the destination mpvmd.
        yield dst.busy_seconds(params.enroll_s, label="re-enroll")
        # Restart message to every task: unblocks senders, installs remap.
        restart_events = [self._control_msg(dst, peer.host) for peer in peers]
        if restart_events:
            yield self.sim.all_of(restart_events)
        for peer in peers:
            peer.context.unblock_sends_to(old_tid, new_tid)  # type: ignore[attr-defined]
        task.context.learn_remap(old_tid, new_tid)  # type: ignore[attr-defined]
        task.state = ProcState.RUNNING
        resume.succeed()
        stats.t_restart_done = self.sim.now
        self.stats.append(stats)
        trace(
            "mpvm.restart.done",
            f"{tid_str(old_tid)} restarted as {tid_str(new_tid)} on {dst.name}",
            obtrusiveness=round(stats.obtrusiveness, 4),
            migration=round(stats.migration_time, 4),
        )
        done.succeed(stats)

    def _control_msg(self, src: Host, dst: Host) -> Event:
        """A small protocol packet between two hosts (flush/ack/restart)."""
        if src is dst:
            return src.ipc_copy(64, label="ctl-local")
        return self.system.network.transfer(src, dst, 64, label="ctl")
