"""MPVM — Migratable PVM (paper §2.1): transparent process migration."""

from .checkpoint import Checkpoint, CheckpointEngine, CheckpointStats
from .context import MpvmContext
from .migration import MigrationStats, MpvmMigrationAdapter
from .system import MpvmSystem

__all__ = [
    "Checkpoint",
    "CheckpointEngine",
    "CheckpointStats",
    "MigrationStats",
    "MpvmContext",
    "MpvmMigrationAdapter",
    "MpvmSystem",
]
